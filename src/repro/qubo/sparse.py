"""Sparse QUBO models (CSR couplings).

The paper's Figure 3 regime — and its closing discussion of
"high-performance sparsity computation" — concerns QUBOs whose coupling
matrices are overwhelmingly zero.  :class:`SparseQuboModel` stores the
symmetric coupling as ``scipy.sparse.csr_matrix`` and implements the same
energy/field interface as :class:`repro.qubo.QuboModel`, so the QHD
solver and the flip-based metaheuristics run on it unchanged (every hot
operation is a sparse mat-vec).  Exact branch & bound densifies first
(its column updates are dense by nature); :meth:`to_dense` makes the
conversion explicit.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np
from scipy import sparse

from repro.exceptions import QuboError
from repro.qubo.model import QuboModel


class SparseQuboModel:
    """Minimisation QUBO with a sparse symmetric coupling matrix.

    Parameters
    ----------
    quadratic:
        Square sparse (or dense) matrix; symmetrised internally, diagonal
        folded into the linear term — same canonicalisation as
        :class:`QuboModel`.
    linear:
        Length-``n`` linear coefficients; defaults to zeros.
    offset:
        Constant energy offset.

    Examples
    --------
    >>> import numpy as np
    >>> from scipy import sparse
    >>> q = sparse.csr_matrix(np.array([[0.0, 2.0], [0.0, 0.0]]))
    >>> model = SparseQuboModel(q, [-1.0, -1.0])
    >>> model.evaluate([1, 0])
    -1.0
    """

    def __init__(
        self,
        quadratic,
        linear: np.ndarray | Iterable[float] | None = None,
        offset: float = 0.0,
    ) -> None:
        matrix = sparse.csr_matrix(quadratic, dtype=np.float64)
        if matrix.shape[0] != matrix.shape[1]:
            raise QuboError(
                f"quadratic must be square, got shape {matrix.shape}"
            )
        n = matrix.shape[0]
        if linear is None:
            b = np.zeros(n, dtype=np.float64)
        else:
            b = np.asarray(linear, dtype=np.float64)
            if b.shape != (n,):
                raise QuboError(
                    f"linear must have shape ({n},), got {b.shape}"
                )
        if not np.all(np.isfinite(b)):
            raise QuboError("linear must contain only finite values")
        if not np.all(np.isfinite(matrix.data)):
            raise QuboError("quadratic must contain only finite values")
        if not np.isfinite(offset):
            raise QuboError(f"offset must be finite, got {offset}")

        coupling = (matrix + matrix.T) * 0.5
        diag = coupling.diagonal().copy()
        coupling = coupling - sparse.diags(diag)
        coupling.eliminate_zeros()
        self._coupling = coupling.tocsr()
        self._effective_linear = b + diag
        self._offset = float(offset)

    # ------------------------------------------------------------------
    # Accessors (mirroring QuboModel)
    # ------------------------------------------------------------------
    @property
    def n_variables(self) -> int:
        """Number of binary variables."""
        return self._coupling.shape[0]

    @property
    def coupling(self) -> sparse.csr_matrix:
        """Symmetric zero-diagonal sparse coupling matrix."""
        return self._coupling

    @property
    def effective_linear(self) -> np.ndarray:
        """Linear coefficients with the diagonal folded in (read-only)."""
        view = self._effective_linear.view()
        view.flags.writeable = False
        return view

    @property
    def offset(self) -> float:
        """Constant energy offset."""
        return self._offset

    @property
    def nnz(self) -> int:
        """Stored nonzero couplings (symmetric counting)."""
        return int(self._coupling.nnz)

    # ------------------------------------------------------------------
    # Energies (same contracts as QuboModel)
    # ------------------------------------------------------------------
    def evaluate(self, x) -> float:
        """Energy of one assignment."""
        vec = np.asarray(x, dtype=np.float64)
        if vec.shape != (self.n_variables,):
            raise QuboError(
                f"x must have shape ({self.n_variables},), got {vec.shape}"
            )
        return float(
            vec @ (self._coupling @ vec)
            + self._effective_linear @ vec
            + self._offset
        )

    def evaluate_batch(self, xs: np.ndarray) -> np.ndarray:
        """Energies of a batch of assignments, shape ``(batch, n)``."""
        batch = np.asarray(xs, dtype=np.float64)
        if batch.ndim != 2 or batch.shape[1] != self.n_variables:
            raise QuboError(
                f"xs must have shape (batch, {self.n_variables}), "
                f"got {batch.shape}"
            )
        sx = self._coupling.dot(batch.T).T  # (batch, n)
        quad = np.einsum("bi,bi->b", batch, sx)
        return quad + batch @ self._effective_linear + self._offset

    def local_fields(self, x) -> np.ndarray:
        """Effective field ``h = 2 S x + c`` (see QuboModel)."""
        vec = np.asarray(x, dtype=np.float64)
        if vec.shape != (self.n_variables,):
            raise QuboError(
                f"x must have shape ({self.n_variables},), got {vec.shape}"
            )
        return 2.0 * self._coupling.dot(vec) + self._effective_linear

    def local_fields_batch(self, xs: np.ndarray) -> np.ndarray:
        """Batched :meth:`local_fields`."""
        batch = np.asarray(xs, dtype=np.float64)
        if batch.ndim != 2 or batch.shape[1] != self.n_variables:
            raise QuboError(
                f"xs must have shape (batch, {self.n_variables}), "
                f"got {batch.shape}"
            )
        return (
            2.0 * self._coupling.dot(batch.T).T + self._effective_linear
        )

    def flip_deltas(self, x) -> np.ndarray:
        """Energy change of flipping each bit."""
        vec = np.asarray(x, dtype=np.float64)
        return (1.0 - 2.0 * vec) * self.local_fields(vec)

    def flip_delta(self, x, index: int) -> float:
        """Energy change of flipping bit ``index`` (sparse row access)."""
        vec = np.asarray(x, dtype=np.float64)
        row = self._coupling.getrow(index)
        field = 2.0 * float(row.dot(vec)[0]) + float(
            self._effective_linear[index]
        )
        return (1.0 - 2.0 * vec[index]) * field

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_dense(self) -> QuboModel:
        """Materialise as a dense :class:`QuboModel` (exact energies)."""
        return QuboModel(
            self._coupling.toarray(),
            self._effective_linear,
            self._offset,
        )

    @classmethod
    def from_dense(cls, model: QuboModel) -> "SparseQuboModel":
        """Build from a dense model (drops explicit zeros)."""
        return cls(
            sparse.csr_matrix(np.asarray(model.coupling)),
            np.asarray(model.effective_linear),
            model.offset,
        )

    def density(self) -> float:
        """Fraction of nonzero off-diagonal couplings."""
        n = self.n_variables
        if n < 2:
            return 0.0
        return self.nnz / (n * (n - 1))

    def __repr__(self) -> str:
        return (
            f"SparseQuboModel(n_variables={self.n_variables}, "
            f"nnz={self.nnz}, offset={self._offset:g})"
        )
