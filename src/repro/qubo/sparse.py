"""Sparse QUBO models (CSR couplings plus optional low-rank factors).

The paper's Figure 3 regime — and its closing discussion of
"high-performance sparsity computation" — concerns QUBOs whose coupling
matrices are overwhelmingly zero.  :class:`SparseQuboModel` stores the
symmetric coupling as ``scipy.sparse.csr_matrix`` and implements the same
:class:`repro.qubo.model.BaseQubo` interface as the dense
:class:`repro.qubo.QuboModel`, so the QHD solver and the flip-based
metaheuristics run on it unchanged (every hot operation is a sparse
mat-vec).

Structured instances like the community-detection QUBO of Algorithm 1 are
"sparse plus low rank": the adjacency couplings are sparse, but the
modularity null model ``d d^T / (2m)^2`` and the Eq. 3/4 penalties are
sums of *squared linear forms* ``alpha_t (f_t^T x + beta_t)^2`` whose
dense expansion would fill the whole matrix.  The optional ``factors``
argument stores those forms explicitly, keeping every operation
O(nnz(S) + nnz(F)) — this is what lets the detector pipeline build
million-variable community QUBOs without ever allocating an O((n k)^2)
array.

Exact branch & bound densifies first (its column updates are dense by
nature); :meth:`to_dense` makes the conversion explicit.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np
from numpy.typing import ArrayLike
from scipy import sparse

from repro.exceptions import QuboError
from repro.qubo.model import BaseQubo, QuboModel


class SparseQuboModel(BaseQubo):
    """Minimisation QUBO with a sparse symmetric coupling matrix.

    Parameters
    ----------
    quadratic:
        Square sparse (or dense) matrix; symmetrised internally, diagonal
        folded into the linear term — same canonicalisation as
        :class:`QuboModel`.
    linear:
        Length-``n`` linear coefficients; defaults to zeros.
    offset:
        Constant energy offset.
    factors:
        Optional ``(coefficients, matrix, constants)`` triple adding
        ``sum_t coefficients[t] * (matrix[t] @ x + constants[t])^2`` to
        the energy.  ``matrix`` is ``(T, n)`` (sparse or dense);
        ``coefficients`` and ``constants`` are length ``T``.  The terms
        are canonicalised exactly like a dense expansion would be: the
        implied diagonal and linear parts are folded into
        :attr:`effective_linear` / :attr:`offset`, and only the pure
        off-diagonal quadratic part remains factorised.

    Examples
    --------
    >>> import numpy as np
    >>> from scipy import sparse
    >>> q = sparse.csr_matrix(np.array([[0.0, 2.0], [0.0, 0.0]]))
    >>> model = SparseQuboModel(q, [-1.0, -1.0])
    >>> model.evaluate([1, 0])
    -1.0
    """

    def __init__(
        self,
        quadratic: Any,
        linear: np.ndarray | Iterable[float] | None = None,
        offset: float = 0.0,
        factors: tuple | None = None,
    ) -> None:
        matrix = sparse.csr_matrix(quadratic, dtype=np.float64)
        if matrix.shape[0] != matrix.shape[1]:
            raise QuboError(
                f"quadratic must be square, got shape {matrix.shape}"
            )
        n = matrix.shape[0]
        if linear is None:
            b = np.zeros(n, dtype=np.float64)
        else:
            b = np.asarray(linear, dtype=np.float64)
            if b.shape != (n,):
                raise QuboError(
                    f"linear must have shape ({n},), got {b.shape}"
                )
        if not np.all(np.isfinite(b)):
            raise QuboError("linear must contain only finite values")
        if not np.all(np.isfinite(matrix.data)):
            raise QuboError("quadratic must contain only finite values")
        if not np.isfinite(offset):
            raise QuboError(f"offset must be finite, got {offset}")

        coupling = (matrix + matrix.T) * 0.5
        diag = coupling.diagonal().copy()
        coupling = coupling - sparse.diags(diag)
        coupling.eliminate_zeros()
        self._coupling = coupling.tocsr()
        effective_linear = b + diag
        offset = float(offset)

        self._factor_matrix = None
        self._factor_matrix_t = None
        self._factor_matrix_csc = None
        self._factor_coefficients = None
        self._factor_diagonal = None
        if factors is not None:
            coefficients, factor_matrix, constants = factors
            alpha = np.asarray(coefficients, dtype=np.float64)
            beta = np.asarray(constants, dtype=np.float64)
            f_mat = sparse.csr_matrix(factor_matrix, dtype=np.float64)
            if f_mat.shape[1] != n:
                raise QuboError(
                    f"factor matrix must have {n} columns, got shape "
                    f"{f_mat.shape}"
                )
            if alpha.shape != (f_mat.shape[0],) or beta.shape != alpha.shape:
                raise QuboError(
                    "factor coefficients/constants must match the factor "
                    f"matrix row count {f_mat.shape[0]}"
                )
            if not (
                np.all(np.isfinite(alpha))
                and np.all(np.isfinite(beta))
                and np.all(np.isfinite(f_mat.data))
            ):
                raise QuboError("factors must contain only finite values")
            # Canonicalise alpha_t (f_t.x + beta_t)^2 the way a dense
            # expansion would: diagonal alpha f_i^2 and linear
            # 2 alpha beta f_i fold into the effective linear, beta^2
            # into the offset; the residual factorised quadratic is
            #     Phi(x) = sum_t alpha_t [ (f_t.x)^2 - sum_i f_ti^2 x_i^2 ]
            # which is exactly x^T (sum_t alpha_t (f f^T - diag(f^2))) x.
            squared = f_mat.multiply(f_mat)
            factor_diag = np.asarray(
                squared.T @ alpha
            ).ravel()
            effective_linear = (
                effective_linear
                + factor_diag
                + np.asarray(f_mat.T @ (2.0 * alpha * beta)).ravel()
            )
            offset += float(np.dot(alpha, beta * beta))
            self._factor_matrix = f_mat
            self._factor_matrix_t = f_mat.T.tocsr()
            self._factor_coefficients = alpha
            self._factor_diagonal = factor_diag

        self._effective_linear = effective_linear
        self._offset = offset

    # ------------------------------------------------------------------
    # Accessors (mirroring QuboModel)
    # ------------------------------------------------------------------
    @property
    def n_variables(self) -> int:
        """Number of binary variables."""
        return self._coupling.shape[0]

    @property
    def coupling(self) -> sparse.csr_matrix:
        """Explicit symmetric zero-diagonal sparse coupling matrix.

        Factor terms are *not* folded in (that would densify); use
        :meth:`to_dense` for the full coupling.
        """
        return self._coupling

    @property
    def effective_linear(self) -> np.ndarray:
        """Linear coefficients with the diagonal folded in (read-only)."""
        view = self._effective_linear.view()
        view.flags.writeable = False
        return view

    @property
    def offset(self) -> float:
        """Constant energy offset."""
        return self._offset

    @property
    def nnz(self) -> int:
        """Stored nonzero couplings (symmetric counting, factors excluded)."""
        return int(self._coupling.nnz)

    @property
    def n_factors(self) -> int:
        """Number of stored squared-linear-form factor terms."""
        if self._factor_matrix is None:
            return 0
        return int(self._factor_matrix.shape[0])

    # ------------------------------------------------------------------
    # Factor-term helpers
    # ------------------------------------------------------------------
    def factor_terms(
        self,
    ) -> tuple[np.ndarray, sparse.csr_matrix, sparse.csc_matrix, np.ndarray] | None:
        """Canonicalised factor internals for incremental flip engines.

        Returns ``None`` when the model has no factors, else the tuple
        ``(coefficients, matrix_csr, matrix_csc, diagonal)`` where
        ``coefficients`` is ``alpha`` (length ``T``), ``matrix_csr`` /
        ``matrix_csc`` are the same ``(T, n)`` factor matrix ``F`` in row
        and column layout (the CSC copy is built lazily and cached, so
        repeated state materialisations — e.g. one per local-search
        restart — share it), and ``diagonal`` is
        ``d_i = sum_t alpha_t f_ti^2``, the diagonal correction already
        folded into :attr:`effective_linear`.

        :class:`repro.qubo.delta.FlipDeltaState` uses the CSC columns to
        find the factor rows touching a flipped bit and the CSR rows to
        propagate the rank-``|T_i|`` field change directly into its
        maintained fields — never reprojecting the full state.
        """
        if self._factor_matrix is None:
            return None
        if self._factor_matrix_csc is None:
            self._factor_matrix_csc = self._factor_matrix.tocsc()
        return (
            self._factor_coefficients,
            self._factor_matrix,
            self._factor_matrix_csc,
            self._factor_diagonal,
        )

    def _factor_quadratic(self, vec: np.ndarray) -> float:
        """Factor contribution to ``x^T C x`` for one assignment."""
        if self._factor_matrix is None:
            return 0.0
        projections = self._factor_matrix @ vec
        return float(
            np.dot(self._factor_coefficients, projections * projections)
            - np.dot(self._factor_diagonal, vec * vec)
        )

    def _factor_quadratic_batch(self, batch: np.ndarray) -> np.ndarray:
        """Factor contribution to ``x^T C x`` for a batch (rows)."""
        if self._factor_matrix is None:
            return np.zeros(len(batch), dtype=np.float64)
        projections = batch @ self._factor_matrix_t  # (batch, T)
        return (
            (projections * projections) @ self._factor_coefficients
            - (batch * batch) @ self._factor_diagonal
        )

    def _factor_matvec(self, vec: np.ndarray) -> np.ndarray:
        """Factor contribution to ``C x`` (for local fields)."""
        if self._factor_matrix is None:
            return np.zeros_like(vec)
        weighted = self._factor_coefficients * (self._factor_matrix @ vec)
        return np.asarray(
            self._factor_matrix_t @ weighted
        ).ravel() - self._factor_diagonal * vec

    def _factor_matvec_batch(self, batch: np.ndarray) -> np.ndarray:
        """Batched :meth:`_factor_matvec` over rows."""
        if self._factor_matrix is None:
            return np.zeros_like(batch)
        weighted = (
            batch @ self._factor_matrix_t
        ) * self._factor_coefficients  # (batch, T)
        return weighted @ self._factor_matrix - batch * self._factor_diagonal

    # ------------------------------------------------------------------
    # Energies (same contracts as QuboModel)
    # ------------------------------------------------------------------
    def evaluate(self, x: ArrayLike) -> float:
        """Energy of one assignment."""
        vec = np.asarray(x, dtype=np.float64)
        if vec.shape != (self.n_variables,):
            raise QuboError(
                f"x must have shape ({self.n_variables},), got {vec.shape}"
            )
        return float(
            vec @ (self._coupling @ vec)
            + self._factor_quadratic(vec)
            + self._effective_linear @ vec
            + self._offset
        )

    def evaluate_batch(self, xs: np.ndarray) -> np.ndarray:
        """Energies of a batch of assignments, shape ``(batch, n)``."""
        batch = np.asarray(xs, dtype=np.float64)
        if batch.ndim != 2 or batch.shape[1] != self.n_variables:
            raise QuboError(
                f"xs must have shape (batch, {self.n_variables}), "
                f"got {batch.shape}"
            )
        sx = self._coupling.dot(batch.T).T  # (batch, n)
        quad = np.einsum("bi,bi->b", batch, sx)
        quad += self._factor_quadratic_batch(batch)
        return quad + batch @ self._effective_linear + self._offset

    def local_fields(self, x: ArrayLike) -> np.ndarray:
        """Effective field ``h = 2 S x + c`` (see QuboModel)."""
        vec = np.asarray(x, dtype=np.float64)
        if vec.shape != (self.n_variables,):
            raise QuboError(
                f"x must have shape ({self.n_variables},), got {vec.shape}"
            )
        product = self._coupling.dot(vec) + self._factor_matvec(vec)
        return 2.0 * product + self._effective_linear

    def local_fields_batch(self, xs: np.ndarray) -> np.ndarray:
        """Batched :meth:`local_fields`."""
        batch = np.asarray(xs, dtype=np.float64)
        if batch.ndim != 2 or batch.shape[1] != self.n_variables:
            raise QuboError(
                f"xs must have shape (batch, {self.n_variables}), "
                f"got {batch.shape}"
            )
        product = self._coupling.dot(batch.T).T + self._factor_matvec_batch(
            batch
        )
        return 2.0 * product + self._effective_linear

    def flip_delta(self, x: ArrayLike, index: int) -> float:
        """Energy change of flipping bit ``index`` (sparse row access)."""
        vec = np.asarray(x, dtype=np.float64)
        row = self._coupling.getrow(index)
        field = 2.0 * float(row.dot(vec)[0]) + float(
            self._effective_linear[index]
        )
        if self._factor_matrix is not None:
            column = self._factor_matrix.getcol(index)
            projections = self._factor_matrix @ vec
            factor_field = float(
                column.T.dot(self._factor_coefficients * projections)[0]
            ) - float(self._factor_diagonal[index]) * float(vec[index])
            field += 2.0 * factor_field
        return (1.0 - 2.0 * vec[index]) * field

    # ------------------------------------------------------------------
    # Array serialisation (process-pool wire format)
    # ------------------------------------------------------------------
    def to_arrays(self) -> dict:
        """Canonical-array bundle for cheap cross-process handoff.

        The CSR coupling ships as its raw ``(data, indices, indptr)``
        triple and the optional factors as their own CSR triple plus the
        coefficient/diagonal vectors — plain numpy buffers throughout,
        no pickled object graphs.  :meth:`from_arrays` reconstructs the
        model bit-exactly without re-running canonicalisation (the
        factor folding into ``effective_linear``/``offset`` already
        happened at original construction and is *not* repeated).

        Examples
        --------
        >>> import numpy as np
        >>> from scipy import sparse
        >>> q = sparse.csr_matrix(np.array([[0.0, 2.0], [0.0, 0.0]]))
        >>> model = SparseQuboModel(q, [-1.0, -1.0])
        >>> clone = SparseQuboModel.from_arrays(model.to_arrays())
        >>> clone.evaluate([1, 0]) == model.evaluate([1, 0])
        True
        """
        bundle = {
            "kind": "sparse",
            "n": self.n_variables,
            "coupling_data": self._coupling.data,
            "coupling_indices": self._coupling.indices,
            "coupling_indptr": self._coupling.indptr,
            "effective_linear": self._effective_linear,
            "offset": self._offset,
        }
        if self._factor_matrix is not None:
            bundle.update(
                factor_coefficients=self._factor_coefficients,
                factor_diagonal=self._factor_diagonal,
                factor_data=self._factor_matrix.data,
                factor_indices=self._factor_matrix.indices,
                factor_indptr=self._factor_matrix.indptr,
                factor_rows=self._factor_matrix.shape[0],
            )
        return bundle

    @classmethod
    def from_arrays(cls, arrays: dict) -> "SparseQuboModel":
        """Rebuild a model from a :meth:`to_arrays` bundle, bit-exactly.

        The bundle's arrays are trusted to be the canonical internals
        (symmetrised zero-diagonal coupling, factor diagonal/linear
        parts already folded), so construction is pure CSR reassembly —
        the transposed factor layout is rebuilt deterministically and
        the cached CSC copy stays lazy.
        """
        if arrays.get("kind") != "sparse":
            raise QuboError(
                f"expected a 'sparse' array bundle, got {arrays.get('kind')!r}"
            )
        n = int(arrays["n"])
        model = cls.__new__(cls)
        model._coupling = sparse.csr_matrix(
            (
                arrays["coupling_data"],
                arrays["coupling_indices"],
                arrays["coupling_indptr"],
            ),
            shape=(n, n),
        )
        model._effective_linear = np.asarray(
            arrays["effective_linear"], dtype=np.float64
        )
        model._offset = float(arrays["offset"])
        model._factor_matrix = None
        model._factor_matrix_t = None
        model._factor_matrix_csc = None
        model._factor_coefficients = None
        model._factor_diagonal = None
        if "factor_data" in arrays:
            f_mat = sparse.csr_matrix(
                (
                    arrays["factor_data"],
                    arrays["factor_indices"],
                    arrays["factor_indptr"],
                ),
                shape=(int(arrays["factor_rows"]), n),
            )
            model._factor_matrix = f_mat
            model._factor_matrix_t = f_mat.T.tocsr()
            model._factor_coefficients = np.asarray(
                arrays["factor_coefficients"], dtype=np.float64
            )
            model._factor_diagonal = np.asarray(
                arrays["factor_diagonal"], dtype=np.float64
            )
        return model

    # ------------------------------------------------------------------
    # Streaming patches
    # ------------------------------------------------------------------
    def patch(
        self,
        *,
        coupling: sparse.csr_matrix
        | tuple[np.ndarray, np.ndarray, np.ndarray]
        | None = None,
        effective_linear: np.ndarray | None = None,
        offset: float | None = None,
        factor_data: np.ndarray | None = None,
        factor_coefficients: np.ndarray | None = None,
        factor_diagonal: np.ndarray | None = None,
    ) -> "SparseQuboModel":
        """A new model with replacement canonical arrays spliced in.

        The streaming path's counterpart of :meth:`from_arrays`: every
        argument left ``None`` is *shared* with this model (instances
        are immutable, so sharing is safe), and — exactly like
        ``from_arrays`` — nothing is re-canonicalised.  ``coupling``
        must already be the symmetric zero-diagonal CSR with explicit
        zeros eliminated; ``effective_linear``/``offset`` must already
        carry the folded diagonal and factor parts; ``factor_data``
        replaces the factor matrix's data over its *unchanged* sparsity
        structure (the transposed copy is rebuilt deterministically,
        the cached CSC stays lazy).

        :class:`repro.qubo.streaming.CommunityQuboPatcher` computes
        these arrays from an edge-event batch so that the patched model
        is bit-exact versus a from-scratch
        :func:`repro.qubo.builders.build_community_qubo` rebuild.
        """
        n = self.n_variables
        model: "SparseQuboModel" = type(self).__new__(type(self))
        if coupling is None:
            model._coupling = self._coupling
        elif isinstance(coupling, tuple):
            data, indices, indptr = coupling
            model._coupling = sparse.csr_matrix(
                (data, indices, indptr), shape=(n, n)
            )
        else:
            if coupling.shape != (n, n):
                raise QuboError(
                    f"patched coupling must have shape {(n, n)}, "
                    f"got {coupling.shape}"
                )
            model._coupling = coupling.tocsr()
        if effective_linear is None:
            model._effective_linear = self._effective_linear
        else:
            linear = np.asarray(effective_linear, dtype=np.float64)
            if linear.shape != (n,):
                raise QuboError(
                    f"patched effective_linear must have shape ({n},), "
                    f"got {linear.shape}"
                )
            model._effective_linear = linear
        model._offset = self._offset if offset is None else float(offset)

        model._factor_matrix = self._factor_matrix
        model._factor_matrix_t = self._factor_matrix_t
        model._factor_matrix_csc = self._factor_matrix_csc
        model._factor_coefficients = self._factor_coefficients
        model._factor_diagonal = self._factor_diagonal
        touched_factors = (
            factor_data is not None
            or factor_coefficients is not None
            or factor_diagonal is not None
        )
        if touched_factors:
            if self._factor_matrix is None:
                raise QuboError(
                    "cannot patch factors of a model built without them"
                )
            if factor_data is not None:
                data = np.asarray(factor_data, dtype=np.float64)
                if data.shape != self._factor_matrix.data.shape:
                    raise QuboError(
                        "patched factor_data must match the factor "
                        f"structure ({self._factor_matrix.data.shape}), "
                        f"got {data.shape}"
                    )
                f_mat = sparse.csr_matrix(
                    (
                        data,
                        self._factor_matrix.indices,
                        self._factor_matrix.indptr,
                    ),
                    shape=self._factor_matrix.shape,
                )
                model._factor_matrix = f_mat
                model._factor_matrix_t = f_mat.T.tocsr()
                model._factor_matrix_csc = None
            if factor_coefficients is not None:
                alpha = np.asarray(factor_coefficients, dtype=np.float64)
                if alpha.shape != self._factor_coefficients.shape:
                    raise QuboError(
                        "patched factor_coefficients must have shape "
                        f"{self._factor_coefficients.shape}, "
                        f"got {alpha.shape}"
                    )
                model._factor_coefficients = alpha
            if factor_diagonal is not None:
                diag = np.asarray(factor_diagonal, dtype=np.float64)
                if diag.shape != (n,):
                    raise QuboError(
                        "patched factor_diagonal must have shape "
                        f"({n},), got {diag.shape}"
                    )
                model._factor_diagonal = diag
        return model

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_dense(self) -> QuboModel:
        """Materialise as a dense :class:`QuboModel` (exact energies)."""
        dense = self._coupling.toarray()
        if self._factor_matrix is not None:
            dense += (
                self._factor_matrix.T
                @ sparse.diags(self._factor_coefficients)
                @ self._factor_matrix
            ).toarray()
            np.fill_diagonal(
                dense, dense.diagonal() - self._factor_diagonal
            )
        return QuboModel(
            dense,
            self._effective_linear,
            self._offset,
        )

    @classmethod
    def from_dense(cls, model: QuboModel) -> "SparseQuboModel":
        """Build from a dense model (drops explicit zeros)."""
        return cls(
            sparse.csr_matrix(np.asarray(model.coupling)),
            np.asarray(model.effective_linear),
            model.offset,
        )

    def density(self) -> float:
        """Fraction of explicitly stored nonzero off-diagonal couplings."""
        n = self.n_variables
        if n < 2:
            return 0.0
        return self.nnz / (n * (n - 1))

    def coupling_row_abs_sums(self) -> np.ndarray:
        """Row sums of the full ``|C|``, factor terms bounded per row.

        For the factor part the triangle inequality gives
        ``sum_j |C^F_ij| <= sum_t |alpha_t| |f_ti| (sum_j |f_tj| - |f_ti|)``,
        which is exact when each factor's couplings do not cancel against
        the explicit ones — good enough for the QHD energy-scale heuristic
        without densifying.
        """
        totals = np.asarray(np.abs(self._coupling).sum(axis=1)).ravel()
        if self._factor_matrix is not None:
            abs_f = self._factor_matrix.copy()
            abs_f.data = np.abs(abs_f.data)
            abs_alpha = np.abs(self._factor_coefficients)
            row_totals = np.asarray(abs_f.sum(axis=1)).ravel()  # (T,)
            # per variable i: sum_t |alpha_t| |f_ti| (s_t - |f_ti|)
            weighted = abs_f.multiply(
                (abs_alpha * row_totals)[:, None]
            ).sum(axis=0)
            squared = abs_f.multiply(abs_f).multiply(
                abs_alpha[:, None]
            ).sum(axis=0)
            totals += np.asarray(weighted).ravel() - np.asarray(
                squared
            ).ravel()
        return totals

    def __repr__(self) -> str:
        return (
            f"SparseQuboModel(n_variables={self.n_variables}, "
            f"nnz={self.nnz}, n_factors={self.n_factors}, "
            f"offset={self._offset:g})"
        )
