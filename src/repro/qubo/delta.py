"""Incremental flip-delta state for single-flip local search.

Single-flip metaheuristics (simulated annealing, tabu search, 1-opt
descent) spend their whole budget asking one question — *what does
flipping bit ``i`` cost?* — and answering it from scratch is a full
mat-vec: ``model.flip_deltas(x)`` is O(nnz) per call, so a sweep over
``n`` variables costs O(n · nnz).  This module maintains the answer
*incrementally* instead.

:class:`FlipDeltaState` materialises the local fields
``h = 2 S x + c`` (factor terms included) **once** per trajectory and
then, on each accepted flip of bit ``i`` with sign ``s = 1 - 2 x_i``,
applies the exact rank-one update

    h_j  +=  2 s S_ij            for j in row i's nonzeros,

so a flip costs O(row nnz) — CSR row slices on
:class:`repro.qubo.SparseQuboModel`, one dense row on
:class:`repro.qubo.QuboModel`.  The flip delta of any bit is then the
O(1) read ``delta_j = (1 - 2 x_j) h_j``.

Low-rank "squared linear form" factors (the sparse community QUBO's
modularity null model and penalty terms) fold into the same maintained
fields: flipping bit ``i`` reads column ``i`` of ``F`` (CSC slice) to
find the factor rows touching the bit and propagates

    h_j  +=  2 s · sum_{t : f_ti != 0} alpha_t f_ti f_tj

row by row into ``h`` — only those rows are visited, no projection of
the full state is ever recomputed.  (The sum double-counts the zero
effective self-coupling at ``j = i``; a single ``2 s d_i`` correction
with the cached factor diagonal cancels it.)

:class:`BatchFlipDeltaState` is the same engine over a ``(batch, n)``
population, one independent trajectory per row — the shape the QHD
refinement pass (:func:`repro.solvers.greedy.local_search_batch`)
descends on.

Two conveniences round the engine off: the fused argmins
(:meth:`FlipDeltaState.best_flip` / :meth:`BatchFlipDeltaState.best_flips`)
evaluate the best single flip directly off the maintained fields into a
state-owned scratch buffer — the tabu/greedy loops no longer allocate an
O(n) ``deltas()`` copy per iteration — and an optional ``refresh_every``
cadence (on both the single and the batched state) re-materialises the
fields every that many accepted flips/flip rounds, so very long runs
can bound their floating-point drift.

Solvers reach this engine through
:func:`repro.solvers.base.flip_state`; see ``docs/architecture.md`` for
the cost model.

Examples
--------
>>> import numpy as np
>>> from repro.qubo import QuboModel
>>> from repro.qubo.delta import FlipDeltaState
>>> model = QuboModel(np.array([[0.0, 2.0], [0.0, 0.0]]), [-1.0, -1.0])
>>> state = FlipDeltaState(model, np.zeros(2))
>>> state.deltas()
array([-1., -1.])
>>> state.flip(0)  # accept: x becomes (1, 0)
-1.0
>>> state.energy == model.evaluate(state.x)
True
"""

from __future__ import annotations

from typing import Any

import numpy as np
from numpy.typing import ArrayLike
from scipy import sparse

from repro.analysis.markers import hot_path
from repro.exceptions import QuboError
from repro.qubo.model import BaseQubo


def _factor_terms_of(model: BaseQubo) -> tuple | None:
    """The model's canonicalised factor internals, or ``None``."""
    getter = getattr(model, "factor_terms", None)
    return None if getter is None else getter()


def _coupling_slots(model: BaseQubo) -> tuple:
    """``(dense_rows, indptr, indices, data)`` row access for ``model``.

    Dense models fill the first slot (row gathers), sparse models the
    CSR triple; the unused slots are ``None``.  Shared by both state
    classes so their row-update wiring cannot diverge.
    """
    coupling = model.coupling
    if sparse.issparse(coupling):
        csr = coupling.tocsr()
        return None, csr.indptr, csr.indices, csr.data
    return np.asarray(coupling, dtype=np.float64), None, None, None


def _factor_slots(model: BaseQubo) -> tuple | None:
    """Factor arrays for the flip update, or ``None`` without factors.

    Returns ``(alpha, row_indptr, row_indices, row_data, col_indptr,
    col_indices, col_data, diagonal)`` — the CSR rows for propagation,
    the CSC columns for touched-row lookup, and the cached diagonal for
    the self-coupling correction.
    """
    factors = _factor_terms_of(model)
    if factors is None:
        return None
    alpha, f_csr, f_csc, diag = factors
    return (
        alpha,
        f_csr.indptr,
        f_csr.indices,
        f_csr.data,
        f_csc.indptr,
        f_csc.indices,
        f_csc.data,
        diag,
    )


def _check_refresh_every(refresh_every: int | None) -> int | None:
    """Validate a refresh cadence (positive int or ``None`` = never)."""
    if refresh_every is None:
        return None
    if (
        not isinstance(refresh_every, (int, np.integer))
        or refresh_every < 1
    ):
        raise QuboError(
            f"refresh_every must be a positive integer or None, "
            f"got {refresh_every!r}"
        )
    return int(refresh_every)


def _bind_model_slots(state: Any, model: BaseQubo) -> None:
    """Wire the coupling-row and factor arrays a state's flips read.

    Shared by :class:`FlipDeltaState` and :class:`BatchFlipDeltaState`
    so the two constructors cannot diverge.
    """
    (
        state._dense_rows,
        state._row_indptr,
        state._row_indices,
        state._row_data,
    ) = _coupling_slots(model)
    slots = _factor_slots(model)
    if slots is None:
        state._f_alpha = None
    else:
        (
            state._f_alpha,
            state._f_row_indptr,
            state._f_row_indices,
            state._f_row_data,
            state._f_col_indptr,
            state._f_col_indices,
            state._f_col_data,
            state._f_diag,
        ) = slots


class FlipDeltaState:
    """Incrementally maintained flip deltas for one search trajectory.

    Parameters
    ----------
    model:
        Dense or sparse :class:`repro.qubo.model.BaseQubo`.
    x:
        Binary starting assignment, length ``n_variables``; copied.
    refresh_every:
        Optional cadence (accepted flips) at which the state
        re-materialises its fields and energy from the model, bounding
        the floating-point drift of very long runs to at most that many
        incremental updates.  ``None`` (default) never refreshes — the
        historical behaviour, and the bit-exact one.

    Notes
    -----
    Construction performs the single full materialisation of the
    trajectory (one ``local_fields`` mat-vec plus one ``evaluate``);
    afterwards every accepted flip is O(coupling-row nnz + factor-row
    nnz).  The maintained fields drift from a fresh recomputation only
    at floating-point rounding level; :meth:`refresh` resynchronises
    them exactly when a caller wants to pay the mat-vec (or pass
    ``refresh_every`` to do so on a fixed cadence).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.qubo import QuboModel
    >>> model = QuboModel(np.array([[0.0, 2.0], [0.0, 0.0]]), [-1.0, -1.0])
    >>> state = FlipDeltaState(model, [0, 1])
    >>> state.delta(0) == float(model.flip_delta([0, 1], 0))
    True
    >>> state.flip(0)
    1.0
    >>> np.allclose(state.deltas(), model.flip_deltas(state.x))
    True
    """

    def __init__(
        self, model: BaseQubo, x: ArrayLike, refresh_every: int | None = None
    ) -> None:
        if not isinstance(model, BaseQubo):
            raise QuboError(
                f"model must be a BaseQubo, got {type(model).__name__}"
            )
        vec = np.array(x, dtype=np.float64)
        if vec.shape != (model.n_variables,):
            raise QuboError(
                f"x must have shape ({model.n_variables},), got {vec.shape}"
            )
        self._model = model
        self._x = vec
        self._refresh_every = _check_refresh_every(refresh_every)
        self._scratch = np.empty_like(vec)
        self._mask_scratch = np.empty(vec.shape, dtype=bool)
        _bind_model_slots(self, model)
        self.refresh()
        self._n_flips = 0

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def model(self) -> BaseQubo:
        """The model this state tracks."""
        return self._model

    @property
    def n_variables(self) -> int:
        """Number of binary variables."""
        return self._x.shape[0]

    @property
    def x(self) -> np.ndarray:
        """Current assignment (read-only float64 view in {0, 1})."""
        view = self._x.view()
        view.flags.writeable = False
        return view

    @property
    def energy(self) -> float:
        """Running energy of the current assignment.

        Maintained as ``E(x0) + sum(accepted deltas)`` — the same
        accumulation the pre-delta-state sweep loops used; re-evaluate
        through the model when exactness at the last ulp matters.
        """
        return self._energy

    @property
    def n_flips(self) -> int:
        """Accepted flips applied since construction."""
        return self._n_flips

    @property
    def refresh_every(self) -> int | None:
        """Accepted-flip cadence of automatic refreshes (None = never)."""
        return self._refresh_every

    @hot_path
    def delta(self, index: int) -> float:
        """Energy change of flipping bit ``index`` — an O(1) read."""
        i = int(index)
        return float((1.0 - 2.0 * self._x[i]) * self._fields[i])

    def deltas(self) -> np.ndarray:
        """Energy change of flipping each bit (fresh array, O(n))."""
        return (1.0 - 2.0 * self._x) * self._fields

    @hot_path
    def best_flip(
        self, where: np.ndarray | None = None
    ) -> tuple[int, float]:
        """The (index, delta) of the best single flip — fused argmin.

        Computes the argmin of the flip deltas directly off the
        maintained fields into a state-owned scratch buffer: no fresh
        O(n) array per call, unlike ``np.argmin(state.deltas())``.
        Ties break to the lowest index, exactly like the copying path.

        Parameters
        ----------
        where:
            Optional boolean mask; only ``True`` positions compete
            (the tabu "allowed moves" restriction).  Must contain at
            least one ``True``.

        Examples
        --------
        >>> import numpy as np
        >>> from repro.qubo import QuboModel
        >>> model = QuboModel(np.array([[0.0, 2.0], [0.0, 0.0]]),
        ...                   [-1.0, -3.0])
        >>> state = FlipDeltaState(model, np.zeros(2))
        >>> state.best_flip()
        (1, -3.0)
        """
        scratch = self._scratch
        np.multiply(self._x, -2.0, out=scratch)
        np.add(scratch, 1.0, out=scratch)
        np.multiply(scratch, self._fields, out=scratch)
        if where is not None:
            np.logical_not(where, out=self._mask_scratch)
            if self._mask_scratch.all():
                raise QuboError(
                    "best_flip requires at least one allowed position"
                )
            scratch[self._mask_scratch] = np.inf
        index = int(np.argmin(scratch))
        return index, float(scratch[index])

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    @hot_path
    def flip(self, index: int) -> float:
        """Accept the flip of bit ``index``; returns its energy delta.

        Updates the assignment, the running energy and the fields of the
        flipped bit's coupling-row neighbours (plus the factor rows
        touching it) in O(row nnz).
        """
        i = int(index)
        fields = self._fields
        s = 1.0 - 2.0 * self._x[i]
        delta = float(s * fields[i])

        if self._dense_rows is not None:
            fields += (2.0 * s) * self._dense_rows[i]
        else:
            a, b = self._row_indptr[i], self._row_indptr[i + 1]
            fields[self._row_indices[a:b]] += (2.0 * s) * self._row_data[a:b]

        if self._f_alpha is not None:
            ca, cb = self._f_col_indptr[i], self._f_col_indptr[i + 1]
            trows = self._f_col_indices[ca:cb]
            if trows.size:
                fvals = self._f_col_data[ca:cb]
                weights = (2.0 * s) * (self._f_alpha[trows] * fvals)
                indptr = self._f_row_indptr
                indices = self._f_row_indices
                data = self._f_row_data
                for t, w in zip(trows.tolist(), weights.tolist()):
                    ra, rb = indptr[t], indptr[t + 1]
                    fields[indices[ra:rb]] += w * data[ra:rb]
                # The row updates wrote 2 s d_i onto the flipped bit's own
                # field; the canonical form has zero effective
                # self-coupling, so cancel it with the cached diagonal.
                fields[i] -= (2.0 * s) * self._f_diag[i]

        self._x[i] = 1.0 - self._x[i]
        self._energy += delta
        self._n_flips += 1
        if (
            self._refresh_every is not None
            and self._n_flips % self._refresh_every == 0
        ):
            self.refresh()
        return delta

    def refresh(self) -> None:
        """Resynchronise fields and energy from the model.

        One full mat-vec — the same cost as a fresh
        ``model.flip_deltas(x)`` — discarding any accumulated
        floating-point drift.
        """
        self._fields = np.asarray(
            self._model.local_fields(self._x), dtype=np.float64
        ).copy()
        self._energy = float(self._model.evaluate(self._x))

    def repatch(
        self, model: BaseQubo, rows: ArrayLike | None = None
    ) -> None:
        """Rebind the state to a patched model, refreshing stale rows.

        The streaming path patches a model's coefficients instead of
        rebuilding it (:meth:`repro.qubo.SparseQuboModel.patch`); this
        is the matching state-side operation.  The coupling and factor
        slots the flip updates read are rewired to ``model``, and the
        maintained fields of ``rows`` are re-materialised from it.
        Rows not listed keep their maintained values — by passing a
        subset the caller asserts the patch left those rows'
        coefficients untouched.  ``rows=None`` (the default)
        re-materialises everything: one full :meth:`refresh`.

        The restricted recompute replays the full mat-vec's per-row
        accumulation (CSR mat-vecs are row-sequential), so on sparse
        models the listed rows come out bit-exact against
        :meth:`refresh`.  The running energy is always re-evaluated in
        full — it has no row structure to exploit.
        """
        if not isinstance(model, BaseQubo):
            raise QuboError(
                f"model must be a BaseQubo, got {type(model).__name__}"
            )
        if model.n_variables != self.n_variables:
            raise QuboError(
                f"patched model must keep {self.n_variables} variables, "
                f"got {model.n_variables}"
            )
        self._model = model
        _bind_model_slots(self, model)
        if rows is None:
            self.refresh()
            return
        idx = np.asarray(rows, dtype=np.intp)
        if idx.size:
            self._fields[idx] = self._recompute_fields(idx)
        self._energy = float(model.evaluate(self._x))

    def _recompute_fields(self, rows: np.ndarray) -> np.ndarray:
        """Exact recompute of the maintained fields for ``rows`` only."""
        vec = self._x
        if self._dense_rows is not None:
            product = self._dense_rows[rows] @ vec
        else:
            product = np.asarray(self._model.coupling[rows] @ vec).ravel()
        if self._f_alpha is not None:
            n_factors = self._f_alpha.shape[0]
            f_mat = sparse.csr_matrix(
                (self._f_row_data, self._f_row_indices, self._f_row_indptr),
                shape=(n_factors, vec.shape[0]),
            )
            transpose = sparse.csr_matrix(
                (self._f_col_data, self._f_col_indices, self._f_col_indptr),
                shape=(vec.shape[0], n_factors),
            )
            weighted = self._f_alpha * (f_mat @ vec)
            projected = np.asarray(transpose[rows] @ weighted).ravel()
            product = product + (projected - self._f_diag[rows] * vec[rows])
        linear = np.asarray(
            self._model.effective_linear, dtype=np.float64
        )
        return np.asarray(2.0 * product + linear[rows], dtype=np.float64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FlipDeltaState(n_variables={self.n_variables}, "
            f"n_flips={self._n_flips}, energy={self._energy:g})"
        )


class BatchFlipDeltaState:
    """Independent :class:`FlipDeltaState` trajectories over a batch.

    Maintains fields of shape ``(batch, n)`` for a population of
    assignments, one trajectory per row — the state behind the
    vectorised 1-opt descent that polishes QHD measurement samples.
    Dense models update all flipped rows with one fancy-indexed gather
    of coupling rows; sparse models update each flipped row in
    O(row nnz + factor-row nnz) exactly like the single-trajectory
    state.

    Parameters
    ----------
    model:
        Dense or sparse :class:`repro.qubo.model.BaseQubo`.
    xs:
        Binary assignments, shape ``(batch, n_variables)``; copied.
    refresh_every:
        Optional cadence, counted in accepted **flip rounds** (calls to
        :meth:`flip`, each of which flips at most one bit per
        trajectory), at which the whole batch re-materialises its
        fields and energies from the model — the batched counterpart
        of :class:`FlipDeltaState`'s knob, bounding the floating-point
        drift of long batched descents to at most that many incremental
        rounds.  ``None`` (default) never refreshes — the historical,
        bit-exact behaviour.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.qubo import QuboModel
    >>> from repro.qubo.delta import BatchFlipDeltaState
    >>> model = QuboModel(np.array([[0.0, 2.0], [0.0, 0.0]]), [-1.0, -1.0])
    >>> state = BatchFlipDeltaState(model, np.zeros((2, 2)))
    >>> state.flip(np.array([0, 1]), np.array([0, 1]))  # one bit per row
    array([-1., -1.])
    >>> np.allclose(state.energies, model.evaluate_batch(state.x))
    True
    """

    def __init__(
        self,
        model: BaseQubo,
        xs: np.ndarray,
        refresh_every: int | None = None,
    ) -> None:
        if not isinstance(model, BaseQubo):
            raise QuboError(
                f"model must be a BaseQubo, got {type(model).__name__}"
            )
        batch = np.array(xs, dtype=np.float64)
        if batch.ndim != 2 or batch.shape[1] != model.n_variables:
            raise QuboError(
                f"xs must have shape (batch, {model.n_variables}), "
                f"got {batch.shape}"
            )
        self._model = model
        self._x = batch
        self._refresh_every = _check_refresh_every(refresh_every)
        self.refresh()
        self._n_flips = 0
        self._scratch = np.empty_like(batch)
        self._row_ids = np.arange(batch.shape[0])
        _bind_model_slots(self, model)

    @property
    def x(self) -> np.ndarray:
        """Current assignments (read-only view, shape ``(batch, n)``)."""
        view = self._x.view()
        view.flags.writeable = False
        return view

    @property
    def energies(self) -> np.ndarray:
        """Running energies per trajectory (read-only view)."""
        view = self._energies.view()
        view.flags.writeable = False
        return view

    @property
    def n_flips(self) -> int:
        """Accepted flip rounds applied since construction."""
        return self._n_flips

    @property
    def refresh_every(self) -> int | None:
        """Flip-round cadence of automatic refreshes (None = never)."""
        return self._refresh_every

    def deltas(self) -> np.ndarray:
        """Flip deltas for every (trajectory, bit), shape ``(batch, n)``."""
        return (1.0 - 2.0 * self._x) * self._fields

    @hot_path
    def best_flips(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-trajectory (indices, deltas) of the best single flips.

        The batched fused argmin: the deltas are evaluated into a
        state-owned ``(batch, n)`` scratch buffer, so no fresh
        ``deltas()`` copy is allocated per sweep.  Ties break to the
        lowest index per row, exactly like ``np.argmin(state.deltas(),
        axis=1)``.

        Examples
        --------
        >>> import numpy as np
        >>> from repro.qubo import QuboModel
        >>> from repro.qubo.delta import BatchFlipDeltaState
        >>> model = QuboModel(np.array([[0.0, 2.0], [0.0, 0.0]]),
        ...                   [-1.0, -3.0])
        >>> state = BatchFlipDeltaState(model, np.zeros((2, 2)))
        >>> cols, deltas = state.best_flips()
        >>> cols.tolist(), deltas.tolist()
        ([1, 1], [-3.0, -3.0])
        """
        scratch = self._scratch
        np.multiply(self._x, -2.0, out=scratch)
        np.add(scratch, 1.0, out=scratch)
        np.multiply(scratch, self._fields, out=scratch)
        cols = np.argmin(scratch, axis=1)
        return cols, scratch[self._row_ids, cols]

    @hot_path
    def flip(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Accept one flip per listed trajectory; returns their deltas.

        ``rows`` must be distinct trajectory indices (each row flips at
        most one bit per call); ``cols`` gives the bit flipped in each.
        """
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        signs = 1.0 - 2.0 * self._x[rows, cols]
        deltas = signs * self._fields[rows, cols]

        if self._dense_rows is not None:
            self._fields[rows] += (
                (2.0 * signs)[:, None] * self._dense_rows[cols]
            )
        else:
            indptr = self._row_indptr
            indices = self._row_indices
            data = self._row_data
            for r, c, s in zip(rows.tolist(), cols.tolist(), signs.tolist()):
                a, b = indptr[c], indptr[c + 1]
                self._fields[r, indices[a:b]] += (2.0 * s) * data[a:b]

        if self._f_alpha is not None:
            f_indptr = self._f_row_indptr
            f_indices = self._f_row_indices
            f_data = self._f_row_data
            for r, c, s in zip(rows.tolist(), cols.tolist(), signs.tolist()):
                ca, cb = self._f_col_indptr[c], self._f_col_indptr[c + 1]
                trows = self._f_col_indices[ca:cb]
                if not trows.size:
                    continue
                fvals = self._f_col_data[ca:cb]
                weights = (2.0 * s) * (self._f_alpha[trows] * fvals)
                row_fields = self._fields[r]
                for t, w in zip(trows.tolist(), weights.tolist()):
                    ra, rb = f_indptr[t], f_indptr[t + 1]
                    row_fields[f_indices[ra:rb]] += w * f_data[ra:rb]
                row_fields[c] -= (2.0 * s) * self._f_diag[c]

        self._x[rows, cols] = 1.0 - self._x[rows, cols]
        self._energies[rows] += deltas
        self._n_flips += 1
        if (
            self._refresh_every is not None
            and self._n_flips % self._refresh_every == 0
        ):
            self.refresh()
        return deltas

    def refresh(self) -> None:
        """Resynchronise fields and energies from the model.

        One full batched mat-vec plus one batched evaluation — the same
        cost as a fresh materialisation — discarding any accumulated
        floating-point drift across the whole population.
        """
        self._fields = np.asarray(
            self._model.local_fields_batch(self._x), dtype=np.float64
        ).copy()
        self._energies = np.asarray(
            self._model.evaluate_batch(self._x), dtype=np.float64
        ).copy()

    def repatch(
        self, model: BaseQubo, rows: ArrayLike | None = None
    ) -> None:
        """Rebind the batch to a patched model, refreshing stale rows.

        The batched counterpart of :meth:`FlipDeltaState.repatch`:
        ``rows`` lists the variable indices whose coefficients the
        patch touched, and only those columns of the ``(batch, n)``
        fields are re-materialised, for every trajectory at once.
        ``rows=None`` (the default) is one full :meth:`refresh`.  The
        running energies are always re-evaluated in full.
        """
        if not isinstance(model, BaseQubo):
            raise QuboError(
                f"model must be a BaseQubo, got {type(model).__name__}"
            )
        if model.n_variables != self._x.shape[1]:
            raise QuboError(
                f"patched model must keep {self._x.shape[1]} variables, "
                f"got {model.n_variables}"
            )
        self._model = model
        _bind_model_slots(self, model)
        if rows is None:
            self.refresh()
            return
        idx = np.asarray(rows, dtype=np.intp)
        if idx.size:
            self._fields[:, idx] = self._recompute_fields(idx)
        self._energies = np.asarray(
            model.evaluate_batch(self._x), dtype=np.float64
        ).copy()

    def _recompute_fields(self, cols: np.ndarray) -> np.ndarray:
        """Exact recompute of the maintained field columns ``cols``."""
        batch = self._x
        if self._dense_rows is not None:
            product = batch @ self._dense_rows[:, cols]
        else:
            product = np.asarray(
                self._model.coupling[cols].dot(batch.T)
            ).T
        if self._f_alpha is not None:
            n_factors = self._f_alpha.shape[0]
            transpose = sparse.csr_matrix(
                (self._f_col_data, self._f_col_indices, self._f_col_indptr),
                shape=(batch.shape[1], n_factors),
            )
            weighted = (batch @ transpose) * self._f_alpha
            projected = np.asarray(transpose[cols] @ weighted.T).T
            product = product + (
                projected - batch[:, cols] * self._f_diag[cols]
            )
        linear = np.asarray(
            self._model.effective_linear, dtype=np.float64
        )
        return np.asarray(2.0 * product + linear[cols], dtype=np.float64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchFlipDeltaState(batch={self._x.shape[0]}, "
            f"n_variables={self._x.shape[1]}, n_flips={self._n_flips})"
        )
