"""Incremental community-QUBO patches for streaming graph updates.

Static detection builds one QUBO per graph
(:func:`repro.qubo.builders.build_community_qubo`).  Under a stream of
edge events the graph changes a little per batch, but a naive pipeline
rebuilds everything: re-derived penalties, fresh COO assembly, a fresh
model canonicalisation and a cold flip-delta state.
:class:`CommunityQuboPatcher` replaces that with coefficient *patches*:

* penalties are **pinned** at the first build — re-deriving
  :func:`repro.qubo.builders.default_penalties` from every intermediate
  graph would silently change the objective mid-stream;
* the sparse backend's explicit couplings are re-expanded directly from
  the new graph's CSR by a pure vectorized gather (no COO sort, no
  symmetrisation pass — the graph CSR is already canonical), and the
  low-rank factors are patched in place: the modularity null rows get
  the touched nodes' new degrees, the null coefficients the new
  ``w1 / (2m)^2``, and everything re-folds through
  :meth:`repro.qubo.SparseQuboModel.patch` without re-running model
  canonicalisation;
* every array is produced by the *same floating-point expressions* the
  builder and model constructor use, so the patched model is bit-exact
  versus a from-scratch ``build_community_qubo`` call with the same
  pinned penalties (the equivalence property the streaming test
  harness pins).

Cost per event batch: any edge event changes the total weight ``2m``,
which rescales **all** modularity couplings and the null-model
projections, so O(|E| k + n k) value work per batch is information-
theoretically required — the savings over a rebuild are the skipped
COO sorts, the skipped symmetrisation/folding passes and the reuse of
the factor sparsity structure.  For the same reason the matching
flip-delta refresh is a full :meth:`FlipDeltaState.repatch` (every
maintained field depends on ``2m`` and on the degree projections);
the row-restricted ``repatch(rows=...)`` form is for patches that
leave the global terms alone.

The dense backend has no incremental structure to exploit — the null
model densifies every community block — so its "patch" recomputes the
canonical arrays with the pinned penalties and splices them through
:meth:`repro.qubo.QuboModel.patch`; it exists so both backends satisfy
the same bit-exact equivalence contract.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np
from scipy import sparse

from repro.exceptions import QuboError
from repro.graphs.graph import Graph
from repro.qubo.builders import (
    CommunityQubo,
    _build_dense,
    _build_sparse,
)
from repro.qubo.model import BaseQubo, QuboModel
from repro.qubo.sparse import SparseQuboModel

__all__ = ["CommunityQuboPatcher"]


class CommunityQuboPatcher:
    """Applies edge-event batches to a community QUBO as patches.

    Parameters
    ----------
    qubo:
        The initial :class:`repro.qubo.builders.CommunityQubo`.  Its
        penalty weights, modularity/cut weights, community count and
        backend are pinned for the lifetime of the patcher.

    Examples
    --------
    >>> from repro.graphs import Graph
    >>> from repro.qubo import CommunityQuboPatcher, build_community_qubo
    >>> graph = Graph(4, [(0, 1), (1, 2), (2, 3)])
    >>> patcher = CommunityQuboPatcher(build_community_qubo(graph, 2))
    >>> updated, touched = patcher.apply_events([("insert", 0, 3, 1.0)])
    >>> updated.graph.has_edge(0, 3)
    True
    >>> sorted(touched.tolist())
    [0, 3]
    """

    def __init__(self, qubo: CommunityQubo) -> None:
        if not isinstance(qubo, CommunityQubo):
            raise QuboError(
                f"qubo must be a CommunityQubo, got {type(qubo).__name__}"
            )
        self._current = qubo
        self._n = qubo.graph.n_nodes
        self._k = int(qubo.n_communities)
        self._w1 = float(qubo.modularity_weight)
        self._w3 = float(qubo.cut_weight)
        self._la = float(qubo.lambda_assignment)
        self._ls = float(qubo.lambda_balance)
        self._backend = qubo.backend
        self._vmap = qubo.variable_map
        self._mod_active = (
            2.0 * qubo.graph.total_weight > 0 and self._w1 > 0
        )
        self._beta = self._pinned_beta()
        # Scratch factor matrices (created lazily): the factor sparsity
        # is pinned between modularity-guard flips, so the per-batch
        # refold reuses two csr/csc pairs sharing one data buffer each
        # instead of reconstructing scipy matrices every batch.
        self._scratch_f: Any = None
        self._scratch_ft: Any = None
        self._scratch_sq: Any = None
        self._scratch_sqt: Any = None
        if self._backend not in ("dense", "sparse"):
            raise QuboError(
                f"qubo.backend must be 'dense' or 'sparse', "
                f"got {self._backend!r}"
            )
        if self._backend == "sparse":
            model = qubo.model
            if not isinstance(model, SparseQuboModel):
                raise QuboError(
                    "a sparse-backend CommunityQubo must hold a "
                    "SparseQuboModel"
                )
            if self._mod_active:
                f_mat = model._factor_matrix
                if f_mat is None or np.any(
                    np.diff(f_mat.indptr[: self._k + 1]) != self._n
                ):
                    raise QuboError(
                        "unrecognised factor layout: expected k dense "
                        "modularity null rows first"
                    )
        elif not isinstance(qubo.model, QuboModel):
            raise QuboError(
                "a dense-backend CommunityQubo must hold a QuboModel"
            )

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def qubo(self) -> CommunityQubo:
        """The current (most recently patched) community QUBO."""
        return self._current

    @property
    def n_communities(self) -> int:
        """Pinned community count ``k``."""
        return self._k

    # ------------------------------------------------------------------
    # Patching
    # ------------------------------------------------------------------
    def apply_events(
        self, edge_events: Iterable[Any]
    ) -> tuple[CommunityQubo, np.ndarray]:
        """Apply one edge-event batch; returns ``(qubo, touched_nodes)``.

        Convenience composition of
        :meth:`repro.graphs.Graph.apply_updates` on the current graph
        and :meth:`update` on its result.
        """
        graph, touched = self._current.graph.apply_updates(edge_events)
        return self.update(graph, touched), touched

    def update(
        self, graph: Graph, touched_nodes: np.ndarray | None = None
    ) -> CommunityQubo:
        """Patch the model onto ``graph`` (same node set, new edges).

        ``touched_nodes`` restricts the factor-column rewrites to the
        nodes whose incident edges changed (``None`` treats every node
        as touched).  Returns the new :class:`CommunityQubo`, which
        also becomes :attr:`qubo`.
        """
        if graph.n_nodes != self._n:
            raise QuboError(
                f"patched graph must keep {self._n} nodes, "
                f"got {graph.n_nodes}"
            )
        if touched_nodes is None:
            touched = np.arange(self._n, dtype=np.int64)
        else:
            touched = np.unique(np.asarray(touched_nodes, dtype=np.int64))
            if touched.size and (
                touched[0] < 0 or touched[-1] >= self._n
            ):
                raise QuboError(
                    f"touched_nodes must lie in 0..{self._n - 1}"
                )
        if self._backend == "dense":
            updated = self._patch_dense(graph)
        else:
            updated = self._patch_sparse(graph, touched)
        self._current = updated
        return updated

    # ------------------------------------------------------------------
    # Backend-specific assembly
    # ------------------------------------------------------------------
    def _wrap(self, model: BaseQubo, graph: Graph) -> CommunityQubo:
        """A :class:`CommunityQubo` around ``model`` with pinned params."""
        return CommunityQubo(
            model=model,
            variable_map=self._vmap,
            graph=graph,
            n_communities=self._k,
            lambda_assignment=self._la,
            lambda_balance=self._ls,
            modularity_weight=self._w1,
            cut_weight=self._w3,
            backend=self._backend,
        )

    def _patch_dense(self, graph: Graph) -> CommunityQubo:
        """Dense patch: pinned-penalty canonical arrays, spliced in."""
        old = self._current.model
        if not isinstance(old, QuboModel):
            raise QuboError("dense patching requires a QuboModel")
        fresh = _build_dense(
            graph, self._vmap, self._la, self._ls, self._w1, self._w3
        )
        model = old.patch(
            coupling=np.asarray(fresh.coupling),
            effective_linear=np.asarray(fresh.effective_linear),
            offset=fresh.offset,
        )
        return self._wrap(model, graph)

    def _patch_sparse(
        self, graph: Graph, touched: np.ndarray
    ) -> CommunityQubo:
        """Sparse patch: gathered couplings plus factor-column rewrites."""
        old = self._current.model
        if not isinstance(old, SparseQuboModel):
            raise QuboError("sparse patching requires a SparseQuboModel")
        two_m = 2.0 * graph.total_weight
        mod_active = two_m > 0 and self._w1 > 0
        if mod_active != self._mod_active:
            # The modularity guard flipped (total weight crossed zero):
            # the factor sparsity itself changes, so there is no
            # structure to splice into — one full assembly, after which
            # patching resumes against the new layout.
            self._mod_active = mod_active
            self._beta = self._pinned_beta()
            self._scratch_f = None
            self._scratch_ft = None
            self._scratch_sq = None
            self._scratch_sqt = None
            model = _build_sparse(
                graph, self._vmap, self._la, self._ls, self._w1, self._w3
            )
            return self._wrap(model, graph)
        nk = self._n * self._k
        coupling = self._expanded_coupling(graph, two_m, mod_active)
        linear = (
            np.zeros(nk, dtype=np.float64)
            + self._loop_diagonal(graph, two_m, mod_active)
        )
        offset = 0.0
        f_mat = old._factor_matrix
        if f_mat is None:
            model = old.patch(
                coupling=coupling,
                effective_linear=linear,
                offset=offset,
            )
            return self._wrap(model, graph)
        alpha = old._factor_coefficients
        if alpha is None or self._beta is None:  # pragma: no cover
            raise QuboError("factor matrix without coefficients")
        new_fdata = np.asarray(f_mat.data, dtype=np.float64).copy()
        new_alpha = alpha.copy()
        if mod_active:
            k = self._k
            if touched.size:
                # Null row c stores node i's degree at indptr[c] + i
                # (the rows are dense over nodes, explicit zeros kept),
                # so only the touched columns are rewritten.
                starts = np.asarray(f_mat.indptr[:k], dtype=np.int64)
                positions = (starts[:, None] + touched[None, :]).ravel()
                new_fdata[positions] = np.tile(
                    np.asarray(graph.degrees)[touched], k
                )
            new_alpha[:k] = np.full(k, self._w1 / (two_m * two_m))
        # Re-fold the factor diagonal/linear parts with the *same*
        # expressions the model constructor uses, so the folded values
        # match a rebuild bit for bit.  The factor sparsity is pinned
        # between guard flips, so the scipy matrices are scratch
        # objects whose shared data buffers are overwritten per batch
        # (entry values and accumulation order match a fresh
        # ``multiply``/transpose exactly).
        if self._scratch_f is None:
            self._scratch_f = sparse.csr_matrix(
                (new_fdata.copy(), f_mat.indices, f_mat.indptr),
                shape=f_mat.shape,
            )
            self._scratch_ft = self._scratch_f.transpose(copy=False)
            self._scratch_sq = sparse.csr_matrix(
                (new_fdata * new_fdata, f_mat.indices, f_mat.indptr),
                shape=f_mat.shape,
            )
            self._scratch_sqt = self._scratch_sq.transpose(copy=False)
        else:
            self._scratch_f.data[:] = new_fdata
            np.multiply(
                new_fdata, new_fdata, out=self._scratch_sq.data
            )
        factor_diag = np.asarray(self._scratch_sqt @ new_alpha).ravel()
        linear = (
            linear
            + factor_diag
            + np.asarray(
                self._scratch_ft @ (2.0 * new_alpha * self._beta)
            ).ravel()
        )
        offset += float(np.dot(new_alpha, self._beta * self._beta))
        model = old.patch(
            coupling=coupling,
            effective_linear=linear,
            offset=offset,
            factor_data=new_fdata,
            factor_coefficients=new_alpha,
            factor_diagonal=factor_diag,
        )
        return self._wrap(model, graph)

    # ------------------------------------------------------------------
    # Sparse array assembly
    # ------------------------------------------------------------------
    def _pinned_beta(self) -> np.ndarray | None:
        """Factor constants in builder layout (null, assignment, balance)."""
        n, k = self._n, self._k
        parts: list[np.ndarray] = []
        if self._mod_active:
            parts.append(np.zeros(k))
        if self._la > 0:
            parts.append(np.full(n, -1.0))
        if self._ls > 0:
            parts.append(np.full(k, -n / k))
        if not parts:
            return None
        return np.concatenate(parts)

    def _expanded_coupling(
        self, graph: Graph, two_m: float, mod_active: bool
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Canonical coupling CSR arrays, gathered from the graph CSR.

        The coupling of the community QUBO is the graph adjacency
        expanded by ``k``: row ``i*k + c`` couples to ``j*k + c`` for
        every non-loop neighbour ``j`` with value
        ``-w1 w_ij / 2m - w3 w_ij`` (active terms only), exact-zero
        values dropped exactly like the constructor's
        ``eliminate_zeros``.  The graph CSR rows are already sorted, so
        the expansion is a pure gather — no COO sort, no
        symmetrisation pass.
        """
        n, k = self._n, self._k
        nk = n * k
        g_indptr, g_indices, g_weights = graph.csr()
        row_of = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(g_indptr)
        )
        vals: np.ndarray | None = None
        if mod_active:
            vals = (-self._w1 / two_m) * g_weights
        if self._w3 > 0:
            cut = -self._w3 * g_weights
            vals = cut if vals is None else vals + cut
        if vals is None:
            vals = np.zeros_like(g_weights)
        keep = (g_indices != row_of) & (vals != 0.0)
        kcum = np.zeros(keep.size + 1, dtype=np.int64)
        np.cumsum(keep, out=kcum[1:])
        kept_per_node = kcum[g_indptr[1:]] - kcum[g_indptr[:-1]]
        kept_start = kcum[g_indptr[:-1]]
        kept_cols = np.asarray(g_indices[keep], dtype=np.int64)
        kept_vals = vals[keep]
        counts = np.repeat(kept_per_node, k)
        indptr = np.zeros(nk + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        total = int(indptr[-1])
        row_ids = np.repeat(np.arange(nk, dtype=np.int64), counts)
        within = np.arange(total, dtype=np.int64) - indptr[row_ids]
        node = row_ids // k
        comm = row_ids - node * k
        gather = kept_start[node] + within
        indices = kept_cols[gather] * k + comm
        data = kept_vals[gather]
        return data, indices, indptr

    def _loop_diagonal(
        self, graph: Graph, two_m: float, mod_active: bool
    ) -> np.ndarray:
        """Self-loop modularity diagonal (folds into the linear term)."""
        nk = self._n * self._k
        diag = np.zeros(nk, dtype=np.float64)
        if not mod_active:
            return diag
        edge_u, edge_v, edge_w = graph.edge_arrays()
        loops = edge_u == edge_v
        if loops.any():
            k = self._k
            positions = (
                edge_u[loops, None] * k + np.arange(k, dtype=np.int64)
            ).ravel()
            diag[positions] = np.repeat(
                (-self._w1 * 2.0 / two_m) * edge_w[loops], k
            )
        return diag

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CommunityQuboPatcher(n_nodes={self._n}, "
            f"n_communities={self._k}, backend={self._backend!r})"
        )
