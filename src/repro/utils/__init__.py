"""Shared utilities: seeded RNG handling, timing, validation helpers."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timer import Stopwatch, TimeBudget
from repro.utils.validation import (
    check_integer,
    check_positive,
    check_probability,
    check_square_matrix,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Stopwatch",
    "TimeBudget",
    "check_integer",
    "check_positive",
    "check_probability",
    "check_square_matrix",
]
