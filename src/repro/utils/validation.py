"""Argument-validation helpers shared across the library.

Each helper raises a descriptive exception naming the offending argument, so
call sites stay one line and error messages stay uniform.
"""

from __future__ import annotations

import numbers
from typing import Any

import numpy as np


def check_integer(value: Any, name: str, minimum: int | None = None) -> int:
    """Validate that ``value`` is an integer, optionally at least ``minimum``.

    Booleans are rejected (``True`` silently behaving as ``1`` hides bugs).
    Returns the value as a plain ``int``.
    """
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_positive(
    value: Any,
    name: str,
    allow_zero: bool = False,
    allow_infinity: bool = False,
) -> float:
    """Validate that ``value`` is a positive (or non-negative) number.

    ``allow_infinity`` admits ``+inf``, the idiom for "no limit" used by
    solver time budgets.  NaN is always rejected.
    """
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a number, got {value!r}")
    value = float(value)
    if np.isnan(value):
        raise ValueError(f"{name} must not be NaN")
    if not np.isfinite(value) and not (allow_infinity and value > 0):
        raise ValueError(f"{name} must be finite, got {value}")
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value}")
    elif value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_time_limit(value: Any, name: str = "time_limit") -> float:
    """Validate a solver wall-clock budget.

    ``None`` means "no limit" and maps to ``+inf`` — the JSON-side
    spelling, since ``Infinity`` is not valid JSON and
    :func:`repro.utils.serialization.to_jsonable` lowers non-finite
    floats to ``null``.
    """
    if value is None:
        return float("inf")
    return check_positive(value, name, allow_infinity=True)


def check_probability(value: Any, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a number, got {value!r}")
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_square_matrix(matrix: Any, name: str) -> np.ndarray:
    """Validate a dense 2-D square array of finite floats and return it.

    The input is converted with ``np.asarray`` (no copy when already a float
    array), so callers may pass nested lists.
    """
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(
            f"{name} must be a square 2-D matrix, got shape {arr.shape}"
        )
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must contain only finite values")
    return arr
