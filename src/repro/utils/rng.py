"""Seeded random-number-generator helpers.

Every stochastic component in the library accepts a ``seed`` argument that may
be ``None``, an integer, or an already-constructed
:class:`numpy.random.Generator`.  :func:`ensure_rng` normalises all three into
a ``Generator`` so downstream code never branches on the seed type.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a reproducible stream, or an
        existing ``Generator`` which is returned unchanged (no copy).

    Examples
    --------
    >>> rng = ensure_rng(7)
    >>> rng2 = ensure_rng(7)
    >>> float(rng.random()) == float(rng2.random())
    True
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        "seed must be None, an int, or a numpy Generator, "
        f"got {type(seed).__name__}"
    )


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from one seed.

    Independent child streams are produced via ``Generator.spawn`` so that
    parallel restarts or repeated trials never share a stream.

    Parameters
    ----------
    seed:
        Parent seed in any form accepted by :func:`ensure_rng`.
    count:
        Number of child generators; must be non-negative.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_rng(seed)
    return list(parent.spawn(count))


def derive_seed(seed: SeedLike, stream: int) -> Optional[int]:
    """Derive a deterministic integer sub-seed for a named stream.

    Useful when a component must pass an *integer* seed to code it does not
    control.  ``None`` stays ``None`` (full entropy); integers are mixed with
    the stream index through SeedSequence so different streams decorrelate.
    """
    if seed is None:
        return None
    if isinstance(seed, np.random.Generator):
        # Draw a fresh integer from the generator itself.
        return int(seed.integers(0, 2**63 - 1))
    seq = np.random.SeedSequence([int(seed), int(stream)])
    return int(seq.generate_state(1, dtype=np.uint64)[0] % (2**63 - 1))
