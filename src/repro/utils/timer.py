"""Wall-clock timing utilities used by solvers and experiment runners.

The evaluation methodology of the paper is time-based: QHD's execution time is
measured first and the exact solver is then run with that same wall-clock
budget (paper §V-B).  :class:`Stopwatch` measures elapsed time and
:class:`TimeBudget` enforces a deadline that solvers poll cheaply from inner
loops.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field


class Stopwatch:
    """A start/stop wall-clock timer based on ``time.perf_counter``.

    Examples
    --------
    >>> sw = Stopwatch().start()
    >>> _ = sum(range(1000))
    >>> sw.stop().elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        """Begin (or resume) timing and return ``self`` for chaining."""
        if self._start is None:
            self._start = time.perf_counter()
        return self

    def stop(self) -> "Stopwatch":
        """Pause timing, accumulating into :attr:`elapsed`."""
        if self._start is not None:
            self._elapsed += time.perf_counter() - self._start
            self._start = None
        return self

    def reset(self) -> "Stopwatch":
        """Zero the accumulated time and stop the watch."""
        self._start = None
        self._elapsed = 0.0
        return self

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently accumulating time."""
        return self._start is not None

    @property
    def elapsed(self) -> float:
        """Total accumulated seconds, including the running segment."""
        extra = 0.0
        if self._start is not None:
            extra = time.perf_counter() - self._start
        return self._elapsed + extra

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


@dataclass
class TimeBudget:
    """A wall-clock deadline polled by anytime solvers.

    Parameters
    ----------
    seconds:
        Budget in seconds.  ``math.inf`` means unlimited.

    Notes
    -----
    The budget starts counting at construction time.  Solvers should call
    :meth:`exhausted` at loop boundaries; the call costs one
    ``perf_counter`` read.
    """

    seconds: float
    _start: float = field(default_factory=time.perf_counter, repr=False)

    def __post_init__(self) -> None:
        if isinstance(self.seconds, bool) or not isinstance(
            self.seconds, (int, float)
        ):
            raise TypeError("seconds must be a number")
        if math.isnan(self.seconds) or self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")
        self.seconds = float(self.seconds)

    @classmethod
    def unlimited(cls) -> "TimeBudget":
        """A budget that never expires."""
        return cls(math.inf)

    def restart(self) -> None:
        """Reset the deadline to ``seconds`` from now."""
        self._start = time.perf_counter()

    @property
    def elapsed(self) -> float:
        """Seconds consumed so far."""
        return time.perf_counter() - self._start

    @property
    def remaining(self) -> float:
        """Seconds left; never negative."""
        return max(0.0, self.seconds - self.elapsed)

    def exhausted(self) -> bool:
        """``True`` once the deadline has passed."""
        return self.elapsed >= self.seconds
