"""JSON-ready conversion of library values.

Result objects, configs and run artifacts carry numpy arrays, numpy
scalars, enums and (frozen) dataclasses.  :func:`to_jsonable` lowers all
of them to plain ``dict`` / ``list`` / ``str`` / numbers so that
``json.dumps`` succeeds without custom encoders and the output can be
read back by any JSON consumer.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Any

import numpy as np


def to_jsonable(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-serialisable built-ins.

    Conversions: numpy arrays -> (nested) lists, numpy scalars ->
    Python scalars, enums -> their ``value``, dataclasses -> dicts,
    mappings/sequences -> dict/list with converted elements, non-finite
    floats (``inf`` time limits, ``nan``) -> ``None`` since strict JSON
    has no spelling for them (solver constructors read ``time_limit:
    None`` back as "no limit").  Strings, finite numbers, booleans and
    ``None`` pass through unchanged.  Objects exposing ``to_dict()``
    (result containers) are lowered through it.

    Examples
    --------
    >>> import numpy as np
    >>> to_jsonable({"x": np.array([1, 2]), "e": np.float64(0.5)})
    {'x': [1, 2], 'e': 0.5}
    >>> to_jsonable(float("inf")) is None
    True
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, enum.Enum):
        return to_jsonable(value.value)
    if isinstance(value, np.ndarray):
        return _finite_listed(value)
    if isinstance(value, np.generic):
        return to_jsonable(value.item())
    if hasattr(value, "to_dict") and callable(value.to_dict):
        return to_jsonable(value.to_dict())
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in value]
    return repr(value)


def _finite_listed(array: np.ndarray) -> Any:
    """``array.tolist()`` with non-finite floats lowered to ``None``."""
    listed = array.tolist()
    if np.issubdtype(array.dtype, np.floating) and not bool(
        np.isfinite(array).all()
    ):
        return to_jsonable(listed)
    return listed
