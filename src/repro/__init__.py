"""Scalable community detection using Quantum Hamiltonian Descent.

Reproduction of *"Scalable Community Detection Using Quantum Hamiltonian
Descent and QUBO Formulation"* (DAC 2025, arXiv:2411.14696).

Quickstart::

    from repro import QhdCommunityDetector
    from repro.graphs import planted_partition_graph

    graph, truth = planted_partition_graph(4, 30, 0.3, 0.02, seed=7)
    detector = QhdCommunityDetector(seed=7)
    result = detector.detect(graph, n_communities=4)
    print(result.modularity, result.n_communities)

Packages
--------
``repro.graphs``
    Graph substrate: CSR graphs, generators, IO, coarsening.
``repro.qubo``
    QUBO models and the Algorithm 1 community-detection formulation.
``repro.hamiltonian``
    Grids, schedules and split-operator propagators for QHD.
``repro.qhd``
    The Quantum Hamiltonian Descent solver (plus exact validators).
``repro.solvers``
    Classical QUBO solvers, including the branch & bound GUROBI substitute.
``repro.community``
    Modularity, direct/multilevel detection pipelines and baselines.
``repro.datasets``
    Synthetic substitutes for the paper's benchmark networks.
``repro.experiments``
    Runners regenerating every table and figure of the evaluation.
"""

from repro._version import __version__
from repro.community.detector import QhdCommunityDetector
from repro.community.result import CommunityResult
from repro.graphs.graph import Graph
from repro.qhd.solver import QhdSolver
from repro.qubo.model import QuboModel

__all__ = [
    "__version__",
    "Graph",
    "QuboModel",
    "QhdSolver",
    "QhdCommunityDetector",
    "CommunityResult",
]
