"""Scalable community detection using Quantum Hamiltonian Descent.

Reproduction of *"Scalable Community Detection Using Quantum Hamiltonian
Descent and QUBO Formulation"* (DAC 2025, arXiv:2411.14696).

The supported entry point is the :mod:`repro.api` facade: one
JSON-serialisable spec dict names the detector, the solver and their
configs, and the facade builds everything through the plugin registries
and returns a structured, serialisable run artifact::

    import repro.api as api
    from repro.graphs import planted_partition_graph

    graph, truth = planted_partition_graph(4, 30, 0.3, 0.02, seed=7)
    spec = {
        "detector": "qhd",                      # api.DETECTORS name
        "solver": "simulated-annealing",        # api.SOLVERS name
        "solver_config": {"n_sweeps": 100},
        "n_communities": 4,
        "seed": 7,
    }
    artifact = api.detect(graph, spec)          # one graph
    artifacts = api.detect_batch(                # many graphs, thread pool
        [graph] * 8, spec, max_workers=4)
    print(artifact.result.modularity, artifact.to_json())

The same spec file drives the CLI (``repro detect --spec spec.json``);
``repro --list-solvers`` enumerates both registries.  The classic
object-oriented surface (below) remains available for fine-grained
control and is what the registries construct under the hood.

Packages
--------
``repro.api``
    The unified facade: solver/detector registries, config round-trips,
    RunSpec/RunArtifact, single and batch spec execution.
``repro.graphs``
    Graph substrate: CSR graphs, generators, IO, coarsening.
``repro.qubo``
    QUBO models and the Algorithm 1 community-detection formulation.
``repro.hamiltonian``
    Grids, schedules and split-operator propagators for QHD.
``repro.qhd``
    The Quantum Hamiltonian Descent solver (plus exact validators).
``repro.solvers``
    Classical QUBO solvers, including the branch & bound GUROBI substitute.
``repro.community``
    Modularity, direct/multilevel detection pipelines and baselines.
``repro.datasets``
    Synthetic substitutes for the paper's benchmark networks.
``repro.experiments``
    Runners regenerating every table and figure of the evaluation.
"""

from repro._version import __version__
from repro.community.detector import QhdCommunityDetector
from repro.community.result import CommunityResult
from repro.graphs.graph import Graph
from repro.qhd.solver import QhdSolver
from repro.qubo.model import QuboModel

__all__ = [
    "__version__",
    "Graph",
    "QuboModel",
    "QhdSolver",
    "QhdCommunityDetector",
    "CommunityResult",
]
