"""LFR-style benchmark graphs: power-law degrees and community sizes.

The LFR benchmark (Lancichinetti-Fortunato-Radicchi) is the standard
synthetic workload for community detection: node degrees and community
sizes both follow truncated power laws, and a mixing parameter ``mu``
fixes the fraction of each node's edges that leave its community.  This
implementation follows the spirit of the benchmark with a simplified
edge-placement scheme (degree-weighted sampling inside and across
communities) that preserves the three controlling features — degree
heterogeneity, size heterogeneity and tunable mixing — which is what the
evaluation workloads actually exercise.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import (
    check_integer,
    check_positive,
    check_probability,
)


def _truncated_power_law(
    exponent: float,
    minimum: int,
    maximum: int,
    size: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Integer samples from a truncated power law ``p(x) ~ x^-exponent``."""
    values = np.arange(minimum, maximum + 1, dtype=np.float64)
    weights = values**-exponent
    weights /= weights.sum()
    return rng.choice(
        np.arange(minimum, maximum + 1), size=size, p=weights
    )


def lfr_graph(
    n_nodes: int,
    mixing: float = 0.1,
    degree_exponent: float = 2.5,
    community_exponent: float = 1.5,
    average_degree: float = 8.0,
    min_community: int = 10,
    seed: SeedLike = None,
) -> tuple[Graph, np.ndarray]:
    """Generate an LFR-style benchmark graph.

    Parameters
    ----------
    n_nodes:
        Number of nodes.
    mixing:
        Target fraction ``mu`` of inter-community edge endpoints per node.
    degree_exponent:
        Power-law exponent of the degree distribution (typically 2-3).
    community_exponent:
        Power-law exponent of the community-size distribution (1-2).
    average_degree:
        Target mean degree; the degree law is truncated to hit it
        approximately.
    min_community:
        Smallest allowed community.

    Returns
    -------
    (graph, labels): the graph and planted community labels.

    Examples
    --------
    >>> graph, labels = lfr_graph(200, mixing=0.1, seed=1)
    >>> graph.n_nodes
    200
    """
    n = check_integer(n_nodes, "n_nodes", minimum=2 * min_community)
    mu = check_probability(mixing, "mixing")
    check_positive(degree_exponent, "degree_exponent")
    check_positive(community_exponent, "community_exponent")
    check_positive(average_degree, "average_degree")
    check_integer(min_community, "min_community", minimum=2)
    rng = ensure_rng(seed)

    # --- Degrees: truncated power law rescaled to the target mean -----
    max_degree = max(min_community, int(np.sqrt(n) * 2))
    degrees = _truncated_power_law(
        degree_exponent, 2, max_degree, n, rng
    ).astype(np.float64)
    degrees *= average_degree / degrees.mean()
    degrees = np.maximum(1, np.round(degrees)).astype(np.int64)

    # --- Community sizes: power law covering all nodes -----------------
    max_community = max(min_community + 1, n // 3)
    sizes: list[int] = []
    remaining = n
    while remaining > 0:
        draw = int(
            _truncated_power_law(
                community_exponent, min_community, max_community, 1, rng
            )[0]
        )
        if draw > remaining:
            draw = remaining
            if draw < min_community and sizes:
                sizes[-1] += draw  # fold the tail into the last community
                remaining = 0
                break
        sizes.append(draw)
        remaining -= draw
    if not sizes:
        raise GraphError("failed to draw any community sizes")

    labels = np.concatenate(
        [np.full(size, c, dtype=np.int64) for c, size in enumerate(sizes)]
    )
    rng.shuffle(labels)

    # --- Edge placement -------------------------------------------------
    # Each node splits its degree into (1 - mu) internal and mu external
    # stubs; stubs pair degree-weighted within the allowed pool.
    edges: set[tuple[int, int]] = set()
    members = {
        c: np.flatnonzero(labels == c) for c in range(len(sizes))
    }

    def sample_partner(
        node: int, pool: np.ndarray, weights: np.ndarray
    ) -> int | None:
        if len(pool) == 0 or weights.sum() <= 0:
            return None
        probabilities = weights / weights.sum()
        for _ in range(8):
            partner = int(rng.choice(pool, p=probabilities))
            if partner != node:
                return partner
        return None

    degree_weights = degrees.astype(np.float64)
    all_nodes = np.arange(n)
    for node in range(n):
        internal_stubs = int(round((1.0 - mu) * degrees[node]))
        external_stubs = int(degrees[node]) - internal_stubs
        community_pool = members[int(labels[node])]
        community_weights = degree_weights[community_pool]
        outside_mask = labels != labels[node]
        outside_pool = all_nodes[outside_mask]
        outside_weights = degree_weights[outside_mask]

        for _ in range(internal_stubs):
            partner = sample_partner(node, community_pool, community_weights)
            if partner is not None:
                edges.add((min(node, partner), max(node, partner)))
        for _ in range(external_stubs):
            partner = sample_partner(node, outside_pool, outside_weights)
            if partner is not None:
                edges.add((min(node, partner), max(node, partner)))

    if edges:
        edge_arr = np.array(sorted(edges), dtype=np.int64)
        graph = Graph.from_arrays(n, edge_arr[:, 0], edge_arr[:, 1])
    else:
        graph = Graph(n, [])
    return graph, labels
