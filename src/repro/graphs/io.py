"""Edge-list file IO.

The SNAP datasets used by the paper ship as whitespace-separated edge lists;
this module reads and writes that format (with optional weights and ``#``
comments) so users can run the pipeline on the real files when they have
them.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.exceptions import GraphError
from repro.graphs.graph import Graph

PathLike = Union[str, Path]


def read_edge_list(path: PathLike, weighted: bool = False) -> Graph:
    """Read a whitespace-separated edge list into a :class:`Graph`.

    Node identifiers may be arbitrary non-negative integers or strings; they
    are relabelled densely to ``0..n-1`` in first-appearance order.  Lines
    starting with ``#`` or ``%`` and blank lines are ignored.

    Parameters
    ----------
    path:
        File to read.
    weighted:
        When true, a third column is parsed as the edge weight (default 1.0
        if the column is missing on a given line).
    """
    path = Path(path)
    index: dict[str, int] = {}
    edges: list[tuple[int, int, float]] = []

    def node_id(token: str) -> int:
        if token not in index:
            index[token] = len(index)
        return index[token]

    with path.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(
                    f"{path}:{line_no}: expected at least two columns, "
                    f"got {line!r}"
                )
            u = node_id(parts[0])
            v = node_id(parts[1])
            weight = 1.0
            if weighted and len(parts) >= 3:
                try:
                    weight = float(parts[2])
                except ValueError as exc:
                    raise GraphError(
                        f"{path}:{line_no}: bad weight {parts[2]!r}"
                    ) from exc
            edges.append((u, v, weight))
    return Graph(len(index), edges)


def write_edge_list(
    graph: Graph, path: PathLike, weighted: bool = False
) -> None:
    """Write a :class:`Graph` as a whitespace-separated edge list.

    Weights are emitted as a third column when ``weighted`` is true.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(f"# nodes={graph.n_nodes} edges={graph.n_edges}\n")
        for u, v, w in graph.edges():
            if weighted:
                handle.write(f"{u} {v} {w:.10g}\n")
            else:
                handle.write(f"{u} {v}\n")
