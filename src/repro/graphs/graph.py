"""A compact weighted undirected graph with CSR adjacency.

The library's algorithms (modularity, QUBO construction, coarsening,
refinement) all operate on dense node indices ``0..n-1`` and need fast
neighbour iteration and weighted degrees.  :class:`Graph` stores a symmetric
CSR adjacency built once at construction; instances are immutable, so derived
quantities (degrees, total edge weight) are computed eagerly and shared
freely.

Construction is array-native end to end: edge lists are converted to
parallel numpy arrays once and every canonicalisation step (bounds checks,
``u <= v`` ordering, duplicate merging, CSR assembly) is a vectorized
operation — there is no per-edge Python loop anywhere on the build path.
CSR neighbour slices are sorted ascending, so point queries
(:meth:`has_edge` / :meth:`edge_weight`) are binary searches.

Self-loops are supported because graph coarsening creates them: an intra-
super-node edge becomes a self-loop whose weight is counted *twice* in the
weighted degree, matching the convention used by modularity (each self-loop
contributes ``2w`` to ``2m``).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import GraphError


#: Edge-event op -> internal code, in intra-batch application order.
_EVENT_OPS: dict[str, int] = {"delete": 0, "reweight": 1, "insert": 2}


def _check_n_nodes(n_nodes: int) -> int:
    if isinstance(n_nodes, bool) or not isinstance(n_nodes, (int, np.integer)):
        raise GraphError(f"n_nodes must be an integer, got {n_nodes!r}")
    if n_nodes < 0:
        raise GraphError(f"n_nodes must be >= 0, got {n_nodes}")
    return int(n_nodes)


def _readonly_triple(
    a: np.ndarray, b: np.ndarray, c: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Read-only views of three arrays, as a statically-typed triple."""
    views: list[np.ndarray] = []
    for arr in (a, b, c):
        view = arr.view()
        view.flags.writeable = False
        views.append(view)
    return views[0], views[1], views[2]


def _canonicalize_edge_arrays(
    n: int,
    u_arr: np.ndarray,
    v_arr: np.ndarray,
    w_arr: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Validate and canonicalise parallel edge arrays (fully vectorized).

    Returns ``(u, v, w)`` with ``u <= v`` per edge, duplicate ``(u, v)``
    pairs merged by weight summation, and edges sorted by ``(u, v)``.
    """
    if np.any((u_arr < 0) | (u_arr >= n) | (v_arr < 0) | (v_arr >= n)):
        bad = np.flatnonzero(
            (u_arr < 0) | (u_arr >= n) | (v_arr < 0) | (v_arr >= n)
        )[0]
        raise GraphError(
            f"edge ({int(u_arr[bad])}, {int(v_arr[bad])}) references a "
            f"node outside 0..{n - 1}"
        )
    finite = np.isfinite(w_arr)
    if not finite.all():
        bad = np.flatnonzero(~finite)[0]
        raise GraphError(
            f"edge ({int(u_arr[bad])}, {int(v_arr[bad])}) has non-finite "
            f"weight {float(w_arr[bad])}"
        )
    negative = w_arr < 0
    if negative.any():
        bad = np.flatnonzero(negative)[0]
        raise GraphError(
            f"edge ({int(u_arr[bad])}, {int(v_arr[bad])}) has negative "
            f"weight {float(w_arr[bad])}; only non-negative weights are "
            "supported"
        )

    lo = np.minimum(u_arr, v_arr)
    hi = np.maximum(u_arr, v_arr)

    # Merge duplicate (u, v) pairs by summing weights.
    keys = lo * n + hi
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    lo, hi, w_arr = lo[order], hi[order], w_arr[order]
    unique_mask = np.empty(len(keys), dtype=bool)
    unique_mask[0] = True
    unique_mask[1:] = keys[1:] != keys[:-1]
    starts = np.flatnonzero(unique_mask)
    merged_w = np.add.reduceat(w_arr, starts)
    return lo[starts], hi[starts], merged_w


class Graph:
    """Immutable weighted undirected graph on nodes ``0..n_nodes-1``.

    Parameters
    ----------
    n_nodes:
        Number of nodes.  Isolated nodes are allowed.
    edges:
        Iterable of ``(u, v)`` or ``(u, v, weight)`` tuples, or an
        ``(m, 2)`` / ``(m, 3)`` array.  Duplicate ``(u, v)`` pairs are
        merged by summing weights; ``(v, u)`` is the same edge as
        ``(u, v)``.  ``u == v`` creates a self-loop.

    Examples
    --------
    >>> g = Graph(3, [(0, 1), (1, 2, 2.0)])
    >>> g.n_edges
    2
    >>> g.degree(1)
    3.0
    >>> sorted(int(nb) for nb in g.neighbors(1))
    [0, 2]
    """

    __slots__ = (
        "_n",
        "_edge_u",
        "_edge_v",
        "_edge_w",
        "_indptr",
        "_indices",
        "_weights",
        "_degrees",
        "_total_weight",
    )

    def __init__(
        self,
        n_nodes: int,
        edges: Iterable[Sequence[float]] = (),
    ) -> None:
        self._n = _check_n_nodes(n_nodes)
        edge_u, edge_v, edge_w = self._normalize_edges(edges)
        self._edge_u = edge_u
        self._edge_v = edge_v
        self._edge_w = edge_w
        self._build_csr()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _normalize_edges(
        self, edges: Iterable[Sequence[float]]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Canonicalise edges: u <= v, merged duplicates, validated ids.

        Edge parsing converts the whole iterable to one ``(m, 2|3)``
        array; validation and merging are pure vectorized array
        operations (see :func:`_canonicalize_edge_arrays`).
        """
        if isinstance(edges, np.ndarray):
            arr = edges
        else:
            edges = list(edges)
            if not edges:
                empty_i = np.empty(0, dtype=np.int64)
                empty_f = np.empty(0, dtype=np.float64)
                return empty_i, empty_i.copy(), empty_f
            try:
                arr = np.asarray(edges, dtype=np.float64)
            except (ValueError, TypeError):
                # Ragged input (mixed 2- and 3-tuples): pad to (u, v, w).
                arr = np.asarray(
                    [
                        (*item, 1.0) if len(item) == 2 else tuple(item)
                        for item in edges
                        if len(item) in (2, 3)
                    ],
                    dtype=np.float64,
                )
                if len(arr) != len(edges):
                    bad = next(e for e in edges if len(e) not in (2, 3))
                    raise GraphError(
                        f"edges must be (u, v) or (u, v, w), got {bad!r}"
                    ) from None
        if arr.size == 0:
            empty_i = np.empty(0, dtype=np.int64)
            empty_f = np.empty(0, dtype=np.float64)
            return empty_i, empty_i.copy(), empty_f
        if arr.ndim != 2 or arr.shape[1] not in (2, 3):
            if isinstance(edges, np.ndarray):
                raise GraphError(
                    f"edges array must have shape (m, 2) or (m, 3), "
                    f"got {arr.shape}"
                )
            raise GraphError(
                f"edges must be (u, v) or (u, v, w), got {edges[0]!r}"
            )
        u_arr = arr[:, 0].astype(np.int64)
        v_arr = arr[:, 1].astype(np.int64)
        if arr.shape[1] == 3:
            w_arr = np.ascontiguousarray(arr[:, 2], dtype=np.float64)
        else:
            w_arr = np.ones(len(arr), dtype=np.float64)
        return _canonicalize_edge_arrays(self._n, u_arr, v_arr, w_arr)

    def _build_csr(self) -> None:
        """Build the symmetric CSR adjacency (rows sorted) and degrees."""
        n = self._n
        u, v, w = self._edge_u, self._edge_v, self._edge_w
        loop_mask = u == v
        nu = np.concatenate([u, v[~loop_mask]])
        nv = np.concatenate([v, u[~loop_mask]])
        nw = np.concatenate([w, w[~loop_mask]])

        counts = np.bincount(nu, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        # Lexsort on (row, column) leaves every CSR row sorted ascending,
        # which is what makes has_edge/edge_weight binary searches.
        order = np.lexsort((nv, nu))
        self._indptr = indptr
        self._indices = nv[order]
        self._weights = nw[order]

        # Weighted degree: self-loops count twice (modularity convention).
        degrees = np.bincount(u, weights=w, minlength=n)
        degrees += np.bincount(v, weights=w, minlength=n)
        self._degrees = degrees
        self._total_weight = float(w.sum())

    # ------------------------------------------------------------------
    # Alternative constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        n_nodes: int,
        edge_u: np.ndarray,
        edge_v: np.ndarray,
        edge_w: np.ndarray | None = None,
        *,
        canonical: bool = False,
    ) -> "Graph":
        """Build a graph from parallel edge arrays (the true fast path).

        Unlike the tuple-iterable constructor, this never materialises
        per-edge Python objects: the arrays go straight through vectorized
        validation, canonicalisation and CSR assembly.

        ``canonical=True`` promises the arrays are already in the form
        :meth:`to_arrays` produces (u ≤ v, sorted, deduped, in-range)
        and adopts them as-is without copying — the zero-copy path for
        shared-memory views on the batch wire.  Canonicalisation is a
        stable no-op on canonical input, so both paths build the same
        graph bit-for-bit.
        """
        graph = cls.__new__(cls)
        graph._n = _check_n_nodes(n_nodes)
        u_arr = np.asarray(edge_u, dtype=np.int64)
        v_arr = np.asarray(edge_v, dtype=np.int64)
        if edge_w is None:
            w_arr = np.ones(len(u_arr), dtype=np.float64)
        else:
            w_arr = np.asarray(edge_w, dtype=np.float64)
        if not (len(u_arr) == len(v_arr) == len(w_arr)):
            raise GraphError(
                "edge_u, edge_v and edge_w must have equal lengths, got "
                f"{len(u_arr)}, {len(v_arr)}, {len(w_arr)}"
            )
        if canonical:
            graph._edge_u = u_arr
            graph._edge_v = v_arr
            graph._edge_w = w_arr
        elif len(u_arr) == 0:
            empty_i = np.empty(0, dtype=np.int64)
            graph._edge_u = empty_i
            graph._edge_v = empty_i.copy()
            graph._edge_w = np.empty(0, dtype=np.float64)
        else:
            eu, ev, ew = _canonicalize_edge_arrays(
                graph._n, u_arr, v_arr, w_arr
            )
            graph._edge_u = eu
            graph._edge_v = ev
            graph._edge_w = ew
        graph._build_csr()
        return graph

    @classmethod
    def from_networkx(cls, nx_graph: Any) -> "Graph":
        """Convert a ``networkx`` graph, relabelling nodes to ``0..n-1``.

        Node order follows ``nx_graph.nodes()``; edge ``weight`` attributes
        are honoured with default 1.0.
        """
        nodes = list(nx_graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        edges = [
            (index[a], index[b], float(data.get("weight", 1.0)))
            for a, b, data in nx_graph.edges(data=True)
        ]
        return cls(len(nodes), edges)

    def to_networkx(self) -> Any:
        """Convert to an undirected weighted :class:`networkx.Graph`."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self._n))
        for u, v, w in self.edges():
            g.add_edge(int(u), int(v), weight=float(w))
        return g

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def n_edges(self) -> int:
        """Number of distinct edges (self-loops count once)."""
        return len(self._edge_u)

    @property
    def total_weight(self) -> float:
        """Sum of edge weights ``m`` (self-loops count once)."""
        return self._total_weight

    @property
    def degrees(self) -> np.ndarray:
        """Weighted degrees of all nodes (read-only view)."""
        view = self._degrees.view()
        view.flags.writeable = False
        return view

    def degree(self, node: int) -> float:
        """Weighted degree of ``node`` (self-loops count twice)."""
        return float(self._degrees[node])

    @property
    def density(self) -> float:
        """Unweighted edge density ``2|E| / (n (n-1))``, ignoring loops."""
        if self._n < 2:
            return 0.0
        simple_edges = int(np.sum(self._edge_u != self._edge_v))
        return 2.0 * simple_edges / (self._n * (self._n - 1))

    # ------------------------------------------------------------------
    # Iteration / queries
    # ------------------------------------------------------------------
    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Yield canonical ``(u, v, weight)`` triples with ``u <= v``."""
        for u, v, w in zip(
            self._edge_u.tolist(),
            self._edge_v.tolist(),
            self._edge_w.tolist(),
        ):
            yield u, v, w

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return read-only canonical edge arrays ``(u, v, w)``."""
        return _readonly_triple(self._edge_u, self._edge_v, self._edge_w)

    def to_arrays(self) -> tuple[int, np.ndarray, np.ndarray, np.ndarray]:
        """``(n_nodes, edge_u, edge_v, edge_w)`` — the wire form of a graph.

        ``Graph.from_arrays(*graph.to_arrays())`` reconstructs an equal
        graph: the returned arrays are already canonical (``u <= v``,
        duplicates merged, sorted), so the rebuild's canonicalisation
        pass is a stable no-op.  This is how
        ``Session(executor="process")`` ships graphs to worker
        processes — raw numpy buffers, never a pickled object graph.
        """
        u, v, w = self.edge_arrays()
        return (self._n, u, v, w)

    def neighbors(self, node: int) -> np.ndarray:
        """Neighbour ids of ``node``, sorted ascending (self included
        for self-loops)."""
        if not 0 <= node < self._n:
            raise GraphError(f"node {node} outside 0..{self._n - 1}")
        return self._indices[self._indptr[node] : self._indptr[node + 1]]

    def neighbor_weights(self, node: int) -> np.ndarray:
        """Edge weights aligned with :meth:`neighbors`."""
        if not 0 <= node < self._n:
            raise GraphError(f"node {node} outside 0..{self._n - 1}")
        return self._weights[self._indptr[node] : self._indptr[node + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether edge ``(u, v)`` exists (binary search, O(log deg))."""
        if not (0 <= u < self._n and 0 <= v < self._n):
            return False
        return self._find_slot(u, v) >= 0

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``(u, v)``; 0.0 when absent (O(log deg))."""
        if not 0 <= u < self._n:
            raise GraphError(f"node {u} outside 0..{self._n - 1}")
        slot = self._find_slot(u, v)
        if slot < 0:
            return 0.0
        return float(self._weights[slot])

    def _find_slot(self, u: int, v: int) -> int:
        """CSR slot of neighbour ``v`` in row ``u``; -1 when absent.

        Rows are sorted ascending at build time, so this is a
        ``searchsorted`` over the row slice.
        """
        start = int(self._indptr[u])
        end = int(self._indptr[u + 1])
        pos = start + int(
            np.searchsorted(self._indices[start:end], v)
        )
        if pos < end and int(self._indices[pos]) == v:
            return pos
        return -1

    def csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return the symmetric CSR arrays ``(indptr, indices, weights)``."""
        return _readonly_triple(self._indptr, self._indices, self._weights)

    # ------------------------------------------------------------------
    # Matrices
    # ------------------------------------------------------------------
    def adjacency_matrix(self) -> np.ndarray:
        """Dense symmetric adjacency matrix ``A`` (self-loop on diagonal)."""
        a = np.zeros((self._n, self._n), dtype=np.float64)
        u, v, w = self._edge_u, self._edge_v, self._edge_w
        a[u, v] += w
        off = u != v
        a[v[off], u[off]] += w[off]
        return a

    def sparse_adjacency(self) -> Any:
        """Symmetric :class:`scipy.sparse.csr_matrix` adjacency.

        The returned matrix owns copies of the CSR arrays: callers may
        mutate it (``setdiag``, ``eliminate_zeros``, ...) without
        corrupting this immutable graph.
        """
        from scipy import sparse

        return sparse.csr_matrix(
            (
                self._weights.copy(),
                self._indices.copy(),
                self._indptr.copy(),
            ),
            shape=(self._n, self._n),
        )

    def modularity_matrix(self) -> np.ndarray:
        """Dense modularity matrix ``B = A - d d^T / (2m)`` (paper Eq. 1).

        Uses Newman's multigraph convention ``A_ii = 2w`` for self-loops
        (a self-loop contributes twice to the diagonal, exactly as it
        contributes twice to the degree), which makes the modularity of a
        partition invariant under super-node aggregation.  For an empty
        graph (``m == 0``) the null-model term vanishes and the doubled
        adjacency diagonal is returned.
        """
        a = self.adjacency_matrix()
        loops = self._edge_u[self._edge_u == self._edge_v]
        if len(loops):
            loop_w = self._edge_w[self._edge_u == self._edge_v]
            a[loops, loops] += loop_w
        two_m = 2.0 * self._total_weight
        if two_m == 0:
            return a
        d = self._degrees
        return a - np.outer(d, d) / two_m

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def connected_components(self) -> list[np.ndarray]:
        """Connected components as sorted arrays of node ids.

        Uses :func:`scipy.sparse.csgraph.connected_components`; components
        are ordered by their smallest member and each component's ids are
        ascending, matching the old BFS discovery order.
        """
        if self._n == 0:
            return []
        from scipy.sparse import csgraph

        n_comp, labels = csgraph.connected_components(
            self.sparse_adjacency(), directed=False
        )
        # Re-rank labels by first occurrence so component order follows
        # the smallest member (scipy's labelling already does this, but
        # the contract should not depend on scipy internals).
        _, first_idx = np.unique(labels, return_index=True)
        rank = np.empty(n_comp, dtype=np.int64)
        rank[np.argsort(first_idx, kind="stable")] = np.arange(n_comp)
        ranked = rank[labels]
        order = np.argsort(ranked, kind="stable")
        sizes = np.bincount(ranked, minlength=n_comp)
        bounds = np.concatenate([[0], np.cumsum(sizes)])
        return [
            order[bounds[i] : bounds[i + 1]].astype(np.int64)
            for i in range(n_comp)
        ]

    def subgraph(self, nodes: Sequence[int]) -> tuple["Graph", np.ndarray]:
        """Induced subgraph on ``nodes`` (vectorized).

        Returns the subgraph (with nodes relabelled ``0..len(nodes)-1`` in the
        given order) and the array mapping new ids back to original ids.
        """
        nodes_arr = np.asarray(list(nodes), dtype=np.int64)
        if len(np.unique(nodes_arr)) != len(nodes_arr):
            raise GraphError("subgraph nodes must be unique")
        if len(nodes_arr) and (
            nodes_arr.min() < 0 or nodes_arr.max() >= self._n
        ):
            raise GraphError(
                f"subgraph nodes must lie in 0..{self._n - 1}"
            )
        new_id = np.full(self._n, -1, dtype=np.int64)
        new_id[nodes_arr] = np.arange(len(nodes_arr), dtype=np.int64)
        u, v, w = self._edge_u, self._edge_v, self._edge_w
        keep = (new_id[u] >= 0) & (new_id[v] >= 0)
        sub = Graph.from_arrays(
            len(nodes_arr),
            new_id[u[keep]],
            new_id[v[keep]],
            w[keep],
        )
        return sub, nodes_arr

    # ------------------------------------------------------------------
    # Streaming updates
    # ------------------------------------------------------------------
    def apply_updates(
        self, edge_events: Iterable[Any]
    ) -> tuple["Graph", np.ndarray]:
        """Apply a batch of edge events, returning a new graph.

        The graph itself stays immutable: the batch produces a fresh
        :class:`Graph` (same canonical edge arrays and sorted-row CSR
        invariants as direct construction) plus the sorted array of
        *touched* node ids — the endpoints of every event, the rows
        whose degrees/adjacency may have changed.

        Parameters
        ----------
        edge_events:
            Iterable of ``(op, u, v)`` / ``(op, u, v, w)`` tuples or
            ``{"op": ..., "u": ..., "v": ..., "w": ...}`` dicts with
            ``op`` one of:

            * ``"insert"`` — add weight ``w`` (default 1.0) to edge
              ``(u, v)``; inserting an existing edge sums into it and
              duplicate inserts in one batch merge by summation,
              exactly like duplicate edges at construction;
            * ``"delete"`` — remove edge ``(u, v)`` entirely; deleting
              a missing edge is a no-op;
            * ``"reweight"`` — set the weight of edge ``(u, v)`` to
              ``w`` (required), creating the edge when absent; for
              duplicate reweights of one edge the last event wins.

            Within a batch, deletions apply first, then reweights,
            then inserts, regardless of listed order.

        Returns
        -------
        (graph, touched):
            The updated graph and the sorted unique node ids appearing
            as an endpoint of any event (no-op deletes included).  An
            empty batch returns an identical graph and an empty array.

        Examples
        --------
        >>> g = Graph(4, [(0, 1), (1, 2)])
        >>> g2, touched = g.apply_updates(
        ...     [("insert", 2, 3), ("delete", 0, 1)]
        ... )
        >>> sorted(g2.edges())
        [(1, 2, 1.0), (2, 3, 1.0)]
        >>> touched.tolist()
        [0, 1, 2, 3]
        """
        kinds: list[int] = []
        us: list[int] = []
        vs: list[int] = []
        ws: list[float] = []
        for event in edge_events:
            if isinstance(event, dict):
                unknown = sorted(set(event) - {"op", "u", "v", "w"})
                if unknown:
                    raise GraphError(
                        f"unknown edge-event keys {unknown}; "
                        "expected op/u/v/w"
                    )
                op = event.get("op")
                raw = (event.get("u"), event.get("v"), event.get("w"))
            else:
                item = tuple(event)
                if len(item) not in (3, 4):
                    raise GraphError(
                        "edge events must be (op, u, v[, w]) tuples or "
                        f"op/u/v/w dicts, got {event!r}"
                    )
                op = item[0]
                raw = (item[1], item[2], item[3] if len(item) == 4 else None)
            code = _EVENT_OPS.get(op)  # type: ignore[arg-type]
            if code is None:
                known = ", ".join(sorted(_EVENT_OPS))
                raise GraphError(
                    f"unknown edge-event op {op!r}; known ops: {known}"
                )
            u, v, w = raw
            if u is None or v is None:
                raise GraphError(
                    f"edge event {event!r} is missing an endpoint"
                )
            if w is None:
                if code == _EVENT_OPS["reweight"]:
                    raise GraphError(
                        f"reweight event {event!r} requires a weight"
                    )
                w = 1.0
            kinds.append(code)
            us.append(int(u))
            vs.append(int(v))
            ws.append(float(w))

        n = self._n
        if not kinds:
            same = Graph.from_arrays(
                n, self._edge_u, self._edge_v, self._edge_w
            )
            return same, np.empty(0, dtype=np.int64)

        kind = np.asarray(kinds, dtype=np.int64)
        u_arr = np.asarray(us, dtype=np.int64)
        v_arr = np.asarray(vs, dtype=np.int64)
        w_arr = np.asarray(ws, dtype=np.float64)
        out = (u_arr < 0) | (u_arr >= n) | (v_arr < 0) | (v_arr >= n)
        if np.any(out):
            bad = np.flatnonzero(out)[0]
            raise GraphError(
                f"edge event ({int(u_arr[bad])}, {int(v_arr[bad])}) "
                f"references a node outside 0..{n - 1}"
            )
        adds = kind != _EVENT_OPS["delete"]
        finite = np.isfinite(w_arr) | ~adds
        if not finite.all():
            bad = np.flatnonzero(~finite)[0]
            raise GraphError(
                f"edge event ({int(u_arr[bad])}, {int(v_arr[bad])}) has "
                f"non-finite weight {float(w_arr[bad])}"
            )
        negative = (w_arr < 0) & adds
        if negative.any():
            bad = np.flatnonzero(negative)[0]
            raise GraphError(
                f"edge event ({int(u_arr[bad])}, {int(v_arr[bad])}) has "
                f"negative weight {float(w_arr[bad])}; only non-negative "
                "weights are supported"
            )

        lo = np.minimum(u_arr, v_arr)
        hi = np.maximum(u_arr, v_arr)
        event_keys = lo * n + hi
        edge_keys = self._edge_u * n + self._edge_v

        # Deletes and reweights both evict the existing entry; reweights
        # re-add theirs with the new weight (set, not sum, semantics).
        reweight = kind == _EVENT_OPS["reweight"]
        evict = np.isin(edge_keys, event_keys[~adds | reweight])
        keep = ~evict

        rw_lo, rw_hi, rw_w = lo[reweight], hi[reweight], w_arr[reweight]
        if len(rw_lo):
            # Last event wins per edge: first occurrence in the reversed
            # key array is the last occurrence in delivery order.
            rw_keys = event_keys[reweight]
            _, rev_first = np.unique(rw_keys[::-1], return_index=True)
            last = len(rw_keys) - 1 - rev_first
            rw_lo, rw_hi, rw_w = rw_lo[last], rw_hi[last], rw_w[last]

        insert = kind == _EVENT_OPS["insert"]
        updated = self._merged(
            keep,
            rw_lo,
            rw_hi,
            rw_w,
            lo[insert],
            hi[insert],
            w_arr[insert],
        )
        touched = np.unique(np.concatenate([lo, hi]))
        return updated, touched

    def _merged(
        self,
        keep: np.ndarray,
        rw_lo: np.ndarray,
        rw_hi: np.ndarray,
        rw_w: np.ndarray,
        in_lo: np.ndarray,
        in_hi: np.ndarray,
        in_w: np.ndarray,
    ) -> "Graph":
        """Assemble the post-batch graph by sorted-merge CSR surgery.

        Produces exactly what ``Graph.from_arrays`` would on the
        concatenated ``[kept, reweights, inserts]`` edge list — the
        canonical arrays, CSR, degrees and total weight are bit-exact,
        because duplicate-insert weights fold left-to-right in the same
        order as the constructor's ``reduceat`` merge and degrees are
        re-accumulated with the same ``bincount`` calls — but in
        O(m + b log b) per batch instead of a fresh O(m log m) lexsort:
        the canonical arrays are key-sorted, so the ``b`` changed
        entries splice in by binary search and positional insert/delete.

        ``keep`` masks the surviving existing edges; ``rw_*`` are the
        deduplicated (last-wins) reweight entries, whose keys are
        disjoint from the kept edges; ``in_*`` are the insert events in
        delivery order.
        """
        n = self._n
        k1_lo = self._edge_u[keep]
        k1_hi = self._edge_v[keep]
        w1 = self._edge_w[keep]
        k1 = k1_lo * n + k1_hi

        # Reweight entries splice into the kept (key-sorted) arrays.
        if len(rw_lo):
            rw_keys = rw_lo * n + rw_hi
            order = np.argsort(rw_keys)
            rw_keys = rw_keys[order]
            rw_lo, rw_hi, rw_w = rw_lo[order], rw_hi[order], rw_w[order]
            pos = np.searchsorted(k1, rw_keys)
            k2 = np.insert(k1, pos, rw_keys)
            k2_lo = np.insert(k1_lo, pos, rw_lo)
            k2_hi = np.insert(k1_hi, pos, rw_hi)
            w2 = np.insert(w1, pos, rw_w)
        else:
            rw_keys = np.empty(0, dtype=np.int64)
            k2, k2_lo, k2_hi, w2 = k1, k1_lo, k1_hi, w1

        # Insert events: group per key and fold weights left-to-right
        # onto any existing entry, replicating the constructor's
        # stable-sort + reduceat duplicate merge bit for bit.
        upd_keys = np.empty(0, dtype=np.int64)
        if len(in_lo):
            in_keys = in_lo * n + in_hi
            order = np.argsort(in_keys, kind="stable")
            s_keys = in_keys[order]
            s_lo, s_hi, s_w = in_lo[order], in_hi[order], in_w[order]
            group = np.empty(len(s_keys), dtype=bool)
            group[0] = True
            group[1:] = s_keys[1:] != s_keys[:-1]
            starts = np.flatnonzero(group)
            u_keys = s_keys[starts]
            pos = np.searchsorted(k2, u_keys)
            hit = pos < len(k2)
            hit[hit] = k2[pos[hit]] == u_keys[hit]
            # Fold order per key: [existing value?, inserts...] — the
            # exact sequence reduceat sees in the constructor.
            ent_keys = np.concatenate([u_keys[hit], s_keys])
            ent_rank = np.concatenate(
                [
                    np.full(int(hit.sum()), -1, dtype=np.int64),
                    np.arange(len(s_keys), dtype=np.int64),
                ]
            )
            ent_vals = np.concatenate([w2[pos[hit]], s_w])
            fold_order = np.lexsort((ent_rank, ent_keys))
            folded_keys = ent_keys[fold_order]
            fold_group = np.empty(len(folded_keys), dtype=bool)
            fold_group[0] = True
            fold_group[1:] = folded_keys[1:] != folded_keys[:-1]
            folded = np.add.reduceat(
                ent_vals[fold_order], np.flatnonzero(fold_group)
            )
            w2 = w2.copy() if w2 is w1 else w2
            w2[pos[hit]] = folded[hit]
            new_pos = pos[~hit]
            k3 = np.insert(k2, new_pos, u_keys[~hit])
            k3_lo = np.insert(k2_lo, new_pos, s_lo[starts][~hit])
            k3_hi = np.insert(k2_hi, new_pos, s_hi[starts][~hit])
            w3 = np.insert(w2, new_pos, folded[~hit])
            # Keys whose kept CSR entries change value in place: hits
            # that landed on a kept edge rather than a reweight entry.
            if len(rw_keys):
                j = np.searchsorted(rw_keys, u_keys[hit])
                in_rw = j < len(rw_keys)
                in_rw[in_rw] = rw_keys[j[in_rw]] == u_keys[hit][in_rw]
                upd_keys = u_keys[hit][~in_rw]
            else:
                upd_keys = u_keys[hit]
        else:
            k3, k3_lo, k3_hi, w3 = k2, k2_lo, k2_hi, w2
            u_keys = np.empty(0, dtype=np.int64)
            hit = np.empty(0, dtype=bool)

        # Structural CSR changes: evicted edges leave, reweight entries
        # and first-seen insert keys arrive (with their folded values).
        rem_lo = self._edge_u[~keep]
        rem_hi = self._edge_v[~keep]
        add_keys = np.sort(np.concatenate([rw_keys, u_keys[~hit]]))
        add_lo = add_keys // n
        add_hi = add_keys % n
        add_w = w3[np.searchsorted(k3, add_keys)]
        upd_w = (
            w3[np.searchsorted(k3, upd_keys)]
            if len(upd_keys)
            else np.empty(0, dtype=np.float64)
        )

        def directed(
            lo: np.ndarray, hi: np.ndarray, w: np.ndarray
        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
            """Doubled (row, col, w) arrays sorted by directed key."""
            loops = lo == hi
            dr = np.concatenate([lo, hi[~loops]])
            dc = np.concatenate([hi, lo[~loops]])
            dw = np.concatenate([w, w[~loops]])
            order = np.argsort(dr * n + dc)
            return dr[order], dc[order], dw[order]

        counts = np.diff(self._indptr)
        rows = np.repeat(np.arange(n, dtype=np.int64), counts)
        dkeys = rows * n + self._indices
        weights = self._weights.copy()

        if len(upd_keys):
            v_lo, v_hi = upd_keys // n, upd_keys % n
            vr, vc, vw = directed(v_lo, v_hi, upd_w)
            weights[np.searchsorted(dkeys, vr * n + vc)] = vw

        counts = counts.copy()
        indices = self._indices
        if len(rem_lo):
            rr, rc, _ = directed(
                rem_lo, rem_hi, np.empty(len(rem_lo), dtype=np.float64)
            )
            keep_mask = np.ones(len(dkeys), dtype=bool)
            keep_mask[np.searchsorted(dkeys, rr * n + rc)] = False
            dkeys = dkeys[keep_mask]
            indices = indices[keep_mask]
            weights = weights[keep_mask]
            np.subtract.at(counts, rr, 1)
        if len(add_keys):
            ar, ac, aw = directed(add_lo, add_hi, add_w)
            pos = np.searchsorted(dkeys, ar * n + ac)
            indices = np.insert(indices, pos, ac)
            weights = np.insert(weights, pos, aw)
            np.add.at(counts, ar, 1)
        elif len(rem_lo) == 0:
            indices = indices.copy()
            weights = weights.copy()
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])

        updated = Graph.__new__(Graph)
        updated._n = n
        updated._edge_u = np.ascontiguousarray(k3_lo, dtype=np.int64)
        updated._edge_v = np.ascontiguousarray(k3_hi, dtype=np.int64)
        updated._edge_w = np.ascontiguousarray(w3, dtype=np.float64)
        updated._indptr = indptr
        updated._indices = indices
        updated._weights = weights
        # Same accumulation calls as _build_csr, on identical canonical
        # arrays — degrees and total weight stay bit-exact.
        degrees = np.bincount(
            updated._edge_u, weights=updated._edge_w, minlength=n
        )
        degrees += np.bincount(
            updated._edge_v, weights=updated._edge_w, minlength=n
        )
        updated._degrees = degrees
        updated._total_weight = float(updated._edge_w.sum())
        return updated

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"Graph(n_nodes={self._n}, n_edges={self.n_edges}, "
            f"total_weight={self._total_weight:g})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._n == other._n
            and np.array_equal(self._edge_u, other._edge_u)
            and np.array_equal(self._edge_v, other._edge_v)
            and np.allclose(self._edge_w, other._edge_w)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hash is enough
        return id(self)
