"""A compact weighted undirected graph with CSR adjacency.

The library's algorithms (modularity, QUBO construction, coarsening,
refinement) all operate on dense node indices ``0..n-1`` and need fast
neighbour iteration and weighted degrees.  :class:`Graph` stores a symmetric
CSR adjacency built once at construction; instances are immutable, so derived
quantities (degrees, total edge weight) are computed eagerly and shared
freely.

Self-loops are supported because graph coarsening creates them: an intra-
super-node edge becomes a self-loop whose weight is counted *twice* in the
weighted degree, matching the convention used by modularity (each self-loop
contributes ``2w`` to ``2m``).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import GraphError


class Graph:
    """Immutable weighted undirected graph on nodes ``0..n_nodes-1``.

    Parameters
    ----------
    n_nodes:
        Number of nodes.  Isolated nodes are allowed.
    edges:
        Iterable of ``(u, v)`` or ``(u, v, weight)`` tuples.  Duplicate
        ``(u, v)`` pairs are merged by summing weights; ``(v, u)`` is the
        same edge as ``(u, v)``.  ``u == v`` creates a self-loop.

    Examples
    --------
    >>> g = Graph(3, [(0, 1), (1, 2, 2.0)])
    >>> g.n_edges
    2
    >>> g.degree(1)
    3.0
    >>> sorted(int(nb) for nb in g.neighbors(1))
    [0, 2]
    """

    __slots__ = (
        "_n",
        "_edge_u",
        "_edge_v",
        "_edge_w",
        "_indptr",
        "_indices",
        "_weights",
        "_degrees",
        "_total_weight",
    )

    def __init__(
        self,
        n_nodes: int,
        edges: Iterable[Sequence[float]] = (),
    ) -> None:
        if isinstance(n_nodes, bool) or not isinstance(
            n_nodes, (int, np.integer)
        ):
            raise GraphError(f"n_nodes must be an integer, got {n_nodes!r}")
        if n_nodes < 0:
            raise GraphError(f"n_nodes must be >= 0, got {n_nodes}")
        self._n = int(n_nodes)

        edge_u, edge_v, edge_w = self._normalize_edges(edges)
        self._edge_u = edge_u
        self._edge_v = edge_v
        self._edge_w = edge_w
        self._build_csr()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _normalize_edges(
        self, edges: Iterable[Sequence[float]]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Canonicalise edges: u <= v, merged duplicates, validated ids."""
        u_list: list[int] = []
        v_list: list[int] = []
        w_list: list[float] = []
        for item in edges:
            if len(item) == 2:
                u, v = item  # type: ignore[misc]
                w = 1.0
            elif len(item) == 3:
                u, v, w = item  # type: ignore[misc]
            else:
                raise GraphError(
                    f"edges must be (u, v) or (u, v, w), got {item!r}"
                )
            u = int(u)
            v = int(v)
            w = float(w)
            if not (0 <= u < self._n and 0 <= v < self._n):
                raise GraphError(
                    f"edge ({u}, {v}) references a node outside "
                    f"0..{self._n - 1}"
                )
            if not np.isfinite(w):
                raise GraphError(f"edge ({u}, {v}) has non-finite weight {w}")
            if w < 0:
                raise GraphError(
                    f"edge ({u}, {v}) has negative weight {w}; only "
                    "non-negative weights are supported"
                )
            if u > v:
                u, v = v, u
            u_list.append(u)
            v_list.append(v)
            w_list.append(w)

        if not u_list:
            empty_i = np.empty(0, dtype=np.int64)
            empty_f = np.empty(0, dtype=np.float64)
            return empty_i, empty_i.copy(), empty_f

        u_arr = np.asarray(u_list, dtype=np.int64)
        v_arr = np.asarray(v_list, dtype=np.int64)
        w_arr = np.asarray(w_list, dtype=np.float64)

        # Merge duplicate (u, v) pairs by summing weights.
        keys = u_arr * self._n + v_arr
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        u_arr, v_arr, w_arr = u_arr[order], v_arr[order], w_arr[order]
        unique_mask = np.empty(len(keys), dtype=bool)
        unique_mask[0] = True
        unique_mask[1:] = keys[1:] != keys[:-1]
        group_ids = np.cumsum(unique_mask) - 1
        merged_w = np.zeros(int(group_ids[-1]) + 1, dtype=np.float64)
        np.add.at(merged_w, group_ids, w_arr)
        keep = np.flatnonzero(unique_mask)
        return u_arr[keep], v_arr[keep], merged_w

    def _build_csr(self) -> None:
        """Build the symmetric CSR adjacency and degree cache."""
        n = self._n
        u, v, w = self._edge_u, self._edge_v, self._edge_w
        loop_mask = u == v
        nu = np.concatenate([u, v[~loop_mask]])
        nv = np.concatenate([v, u[~loop_mask]])
        nw = np.concatenate([w, w[~loop_mask]])

        counts = np.bincount(nu, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        order = np.argsort(nu, kind="stable")
        self._indptr = indptr
        self._indices = nv[order]
        self._weights = nw[order]

        # Weighted degree: self-loops count twice (modularity convention).
        degrees = np.zeros(n, dtype=np.float64)
        np.add.at(degrees, u, w)
        np.add.at(degrees, v, w)
        self._degrees = degrees
        self._total_weight = float(w.sum())

    # ------------------------------------------------------------------
    # Alternative constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        n_nodes: int,
        edge_u: np.ndarray,
        edge_v: np.ndarray,
        edge_w: np.ndarray | None = None,
    ) -> "Graph":
        """Build a graph from parallel edge arrays (fast path)."""
        if edge_w is None:
            edge_w = np.ones(len(edge_u), dtype=np.float64)
        return cls(n_nodes, zip(edge_u.tolist(), edge_v.tolist(), edge_w.tolist()))

    @classmethod
    def from_networkx(cls, nx_graph) -> "Graph":
        """Convert a ``networkx`` graph, relabelling nodes to ``0..n-1``.

        Node order follows ``nx_graph.nodes()``; edge ``weight`` attributes
        are honoured with default 1.0.
        """
        nodes = list(nx_graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        edges = [
            (index[a], index[b], float(data.get("weight", 1.0)))
            for a, b, data in nx_graph.edges(data=True)
        ]
        return cls(len(nodes), edges)

    def to_networkx(self):
        """Convert to an undirected weighted :class:`networkx.Graph`."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self._n))
        for u, v, w in self.edges():
            g.add_edge(int(u), int(v), weight=float(w))
        return g

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def n_edges(self) -> int:
        """Number of distinct edges (self-loops count once)."""
        return len(self._edge_u)

    @property
    def total_weight(self) -> float:
        """Sum of edge weights ``m`` (self-loops count once)."""
        return self._total_weight

    @property
    def degrees(self) -> np.ndarray:
        """Weighted degrees of all nodes (read-only view)."""
        view = self._degrees.view()
        view.flags.writeable = False
        return view

    def degree(self, node: int) -> float:
        """Weighted degree of ``node`` (self-loops count twice)."""
        return float(self._degrees[node])

    @property
    def density(self) -> float:
        """Unweighted edge density ``2|E| / (n (n-1))``, ignoring loops."""
        if self._n < 2:
            return 0.0
        simple_edges = int(np.sum(self._edge_u != self._edge_v))
        return 2.0 * simple_edges / (self._n * (self._n - 1))

    # ------------------------------------------------------------------
    # Iteration / queries
    # ------------------------------------------------------------------
    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Yield canonical ``(u, v, weight)`` triples with ``u <= v``."""
        for u, v, w in zip(self._edge_u, self._edge_v, self._edge_w):
            yield int(u), int(v), float(w)

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return read-only canonical edge arrays ``(u, v, w)``."""
        arrays = []
        for arr in (self._edge_u, self._edge_v, self._edge_w):
            view = arr.view()
            view.flags.writeable = False
            arrays.append(view)
        return tuple(arrays)  # type: ignore[return-value]

    def neighbors(self, node: int) -> np.ndarray:
        """Neighbour indices of ``node`` (includes ``node`` for self-loops)."""
        if not 0 <= node < self._n:
            raise GraphError(f"node {node} outside 0..{self._n - 1}")
        return self._indices[self._indptr[node] : self._indptr[node + 1]]

    def neighbor_weights(self, node: int) -> np.ndarray:
        """Edge weights aligned with :meth:`neighbors`."""
        if not 0 <= node < self._n:
            raise GraphError(f"node {node} outside 0..{self._n - 1}")
        return self._weights[self._indptr[node] : self._indptr[node + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether edge ``(u, v)`` exists."""
        if not (0 <= u < self._n and 0 <= v < self._n):
            return False
        return bool(np.any(self.neighbors(u) == v))

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``(u, v)``; 0.0 when absent."""
        neighbors = self.neighbors(u)
        hits = np.flatnonzero(neighbors == v)
        if len(hits) == 0:
            return 0.0
        return float(self.neighbor_weights(u)[hits[0]])

    def csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return the symmetric CSR arrays ``(indptr, indices, weights)``."""
        arrays = []
        for arr in (self._indptr, self._indices, self._weights):
            view = arr.view()
            view.flags.writeable = False
            arrays.append(view)
        return tuple(arrays)  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Matrices
    # ------------------------------------------------------------------
    def adjacency_matrix(self) -> np.ndarray:
        """Dense symmetric adjacency matrix ``A`` (self-loop on diagonal)."""
        a = np.zeros((self._n, self._n), dtype=np.float64)
        u, v, w = self._edge_u, self._edge_v, self._edge_w
        a[u, v] += w
        off = u != v
        a[v[off], u[off]] += w[off]
        return a

    def sparse_adjacency(self):
        """Symmetric :class:`scipy.sparse.csr_matrix` adjacency."""
        from scipy import sparse

        return sparse.csr_matrix(
            (self._weights, self._indices, self._indptr),
            shape=(self._n, self._n),
        )

    def modularity_matrix(self) -> np.ndarray:
        """Dense modularity matrix ``B = A - d d^T / (2m)`` (paper Eq. 1).

        Uses Newman's multigraph convention ``A_ii = 2w`` for self-loops
        (a self-loop contributes twice to the diagonal, exactly as it
        contributes twice to the degree), which makes the modularity of a
        partition invariant under super-node aggregation.  For an empty
        graph (``m == 0``) the null-model term vanishes and the doubled
        adjacency diagonal is returned.
        """
        a = self.adjacency_matrix()
        loops = self._edge_u[self._edge_u == self._edge_v]
        if len(loops):
            loop_w = self._edge_w[self._edge_u == self._edge_v]
            a[loops, loops] += loop_w
        two_m = 2.0 * self._total_weight
        if two_m == 0:
            return a
        d = self._degrees
        return a - np.outer(d, d) / two_m

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def connected_components(self) -> list[np.ndarray]:
        """Connected components as arrays of node ids (BFS, iterative)."""
        seen = np.zeros(self._n, dtype=bool)
        components: list[np.ndarray] = []
        for start in range(self._n):
            if seen[start]:
                continue
            stack = [start]
            seen[start] = True
            members = [start]
            while stack:
                node = stack.pop()
                for nb in self.neighbors(node):
                    nb = int(nb)
                    if not seen[nb]:
                        seen[nb] = True
                        stack.append(nb)
                        members.append(nb)
            components.append(np.asarray(sorted(members), dtype=np.int64))
        return components

    def subgraph(self, nodes: Sequence[int]) -> tuple["Graph", np.ndarray]:
        """Induced subgraph on ``nodes``.

        Returns the subgraph (with nodes relabelled ``0..len(nodes)-1`` in the
        given order) and the array mapping new ids back to original ids.
        """
        nodes_arr = np.asarray(list(nodes), dtype=np.int64)
        if len(np.unique(nodes_arr)) != len(nodes_arr):
            raise GraphError("subgraph nodes must be unique")
        index = {int(old): new for new, old in enumerate(nodes_arr)}
        edges = [
            (index[u], index[v], w)
            for u, v, w in self.edges()
            if u in index and v in index
        ]
        return Graph(len(nodes_arr), edges), nodes_arr

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"Graph(n_nodes={self._n}, n_edges={self.n_edges}, "
            f"total_weight={self._total_weight:g})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._n == other._n
            and np.array_equal(self._edge_u, other._edge_u)
            and np.array_equal(self._edge_v, other._edge_v)
            and np.allclose(self._edge_w, other._edge_w)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hash is enough
        return id(self)
