"""Random-graph generators used as workloads throughout the evaluation.

All generators are implemented natively on numpy (no networkx dependency) so
that instance generation is fast and reproducible from a single integer seed.
Each returns a :class:`repro.graphs.Graph`; generators with planted community
structure also return the ground-truth community labels.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_integer, check_probability


def _sample_distinct_pairs(
    left: np.ndarray,
    right: np.ndarray,
    count: int,
    rng: np.random.Generator,
    forbid_equal: bool,
) -> set[tuple[int, int]]:
    """Sample ``count`` distinct unordered pairs from ``left × right``.

    Sampling is with replacement plus de-duplication and top-up, which is
    efficient in the sparse regimes the generators use.  The loop caps the
    number of rounds to guarantee termination even when ``count`` is close
    to the size of the pair space.
    """
    pairs: set[tuple[int, int]] = set()
    max_rounds = 64
    for _ in range(max_rounds):
        needed = count - len(pairs)
        if needed <= 0:
            break
        draw = max(needed, int(needed * 1.2) + 8)
        us = left[rng.integers(0, len(left), size=draw)]
        vs = right[rng.integers(0, len(right), size=draw)]
        for u, v in zip(us.tolist(), vs.tolist()):
            if forbid_equal and u == v:
                continue
            pair = (u, v) if u < v else (v, u)
            pairs.add(pair)
            if len(pairs) == count:
                break
    return pairs


def _pairs_to_arrays(
    pairs: set[tuple[int, int]]
) -> tuple[np.ndarray, np.ndarray]:
    """Unzip a pair set into parallel (u, v) edge arrays."""
    if not pairs:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    arr = np.array(sorted(pairs), dtype=np.int64)
    return arr[:, 0], arr[:, 1]


def erdos_renyi_graph(
    n_nodes: int, edge_probability: float, seed: SeedLike = None
) -> Graph:
    """G(n, p) random graph.

    Edge count is drawn from Binomial(C(n,2), p) and that many distinct
    pairs are sampled uniformly, which is equivalent to G(n, p) and avoids
    materialising the full n x n Bernoulli matrix.

    Examples
    --------
    >>> g = erdos_renyi_graph(50, 0.1, seed=0)
    >>> g.n_nodes
    50
    """
    n = check_integer(n_nodes, "n_nodes", minimum=0)
    p = check_probability(edge_probability, "edge_probability")
    rng = ensure_rng(seed)
    if n < 2 or p == 0.0:
        return Graph(n, [])
    n_pairs = n * (n - 1) // 2
    count = int(rng.binomial(n_pairs, p))
    nodes = np.arange(n)
    pairs = _sample_distinct_pairs(nodes, nodes, count, rng, forbid_equal=True)
    edge_u, edge_v = _pairs_to_arrays(pairs)
    return Graph.from_arrays(n, edge_u, edge_v)


def stochastic_block_model_graph(
    block_sizes: list[int],
    probability_matrix: np.ndarray,
    seed: SeedLike = None,
) -> tuple[Graph, np.ndarray]:
    """Stochastic block model.

    Parameters
    ----------
    block_sizes:
        Node count of each block; blocks are laid out consecutively.
    probability_matrix:
        Symmetric ``k x k`` matrix of edge probabilities.

    Returns
    -------
    (graph, labels):
        The sampled graph and the planted block label of every node.
    """
    sizes = [check_integer(s, "block size", minimum=1) for s in block_sizes]
    probs = np.asarray(probability_matrix, dtype=float)
    k = len(sizes)
    if probs.shape != (k, k):
        raise GraphError(
            f"probability_matrix must be {k}x{k}, got shape {probs.shape}"
        )
    if not np.allclose(probs, probs.T):
        raise GraphError("probability_matrix must be symmetric")
    if np.any(probs < 0) or np.any(probs > 1):
        raise GraphError("probability_matrix entries must be in [0, 1]")

    rng = ensure_rng(seed)
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    n = int(offsets[-1])
    labels = np.concatenate(
        [np.full(size, b, dtype=np.int64) for b, size in enumerate(sizes)]
    )

    edge_blocks: list[np.ndarray] = []
    for a in range(k):
        block_a = np.arange(offsets[a], offsets[a + 1])
        for b in range(a, k):
            p = float(probs[a, b])
            if p == 0.0:
                continue
            if a == b:
                n_pairs = len(block_a) * (len(block_a) - 1) // 2
                count = int(rng.binomial(n_pairs, p)) if n_pairs else 0
                pairs = _sample_distinct_pairs(
                    block_a, block_a, count, rng, forbid_equal=True
                )
            else:
                block_b = np.arange(offsets[b], offsets[b + 1])
                n_pairs = len(block_a) * len(block_b)
                count = int(rng.binomial(n_pairs, p))
                pairs = _sample_distinct_pairs(
                    block_a, block_b, count, rng, forbid_equal=False
                )
            edge_blocks.append(np.column_stack(_pairs_to_arrays(pairs)))
    if edge_blocks:
        stacked = np.concatenate(edge_blocks, axis=0)
        graph = Graph.from_arrays(n, stacked[:, 0], stacked[:, 1])
    else:
        graph = Graph(n, [])
    return graph, labels


def planted_partition_graph(
    n_communities: int,
    community_size: int,
    p_in: float,
    p_out: float,
    seed: SeedLike = None,
) -> tuple[Graph, np.ndarray]:
    """Planted-partition model: equal blocks, uniform in/out probabilities.

    A convenience wrapper around :func:`stochastic_block_model_graph` with
    ``probability_matrix = p_out + (p_in - p_out) I``.
    """
    k = check_integer(n_communities, "n_communities", minimum=1)
    size = check_integer(community_size, "community_size", minimum=1)
    check_probability(p_in, "p_in")
    check_probability(p_out, "p_out")
    probs = np.full((k, k), float(p_out))
    np.fill_diagonal(probs, float(p_in))
    return stochastic_block_model_graph([size] * k, probs, seed=seed)


def power_law_cluster_graph(
    n_nodes: int,
    edges_per_node: int,
    triangle_probability: float,
    seed: SeedLike = None,
) -> Graph:
    """Holme-Kim power-law graph with tunable clustering.

    Growth model: each new node attaches ``edges_per_node`` edges by
    preferential attachment; after each attachment, with probability
    ``triangle_probability`` the next edge instead closes a triangle with a
    random neighbour of the previous target.  Produces the heavy-tailed
    degree distributions typical of the social networks in the paper's
    large-network evaluation (Table II).
    """
    n = check_integer(n_nodes, "n_nodes", minimum=1)
    m = check_integer(edges_per_node, "edges_per_node", minimum=1)
    p = check_probability(triangle_probability, "triangle_probability")
    if m >= n:
        raise GraphError(
            f"edges_per_node ({m}) must be < n_nodes ({n})"
        )
    rng = ensure_rng(seed)

    # repeated_nodes holds each node once per unit of degree, which makes
    # uniform sampling from it preferential attachment.
    repeated_nodes: list[int] = list(range(m))
    adjacency: list[set[int]] = [set() for _ in range(n)]
    edges: list[tuple[int, int, float]] = []

    def add_edge(u: int, v: int) -> None:
        adjacency[u].add(v)
        adjacency[v].add(u)
        edges.append((u, v, 1.0))
        repeated_nodes.append(u)
        repeated_nodes.append(v)

    for source in range(m, n):
        targets: set[int] = set()
        # First target is always preferential attachment.
        while len(targets) < m:
            candidate = repeated_nodes[rng.integers(0, len(repeated_nodes))]
            if candidate in targets or candidate == source:
                continue
            targets.add(candidate)
            if len(targets) < m and rng.random() < p:
                # Triad formation: connect to a neighbour of `candidate`.
                neighbour_pool = [
                    nb
                    for nb in adjacency[candidate]
                    if nb != source and nb not in targets
                ]
                if neighbour_pool:
                    friend = neighbour_pool[
                        rng.integers(0, len(neighbour_pool))
                    ]
                    targets.add(friend)
        for target in targets:
            add_edge(source, target)
    return Graph(n, edges)


def ring_of_cliques(
    n_cliques: int, clique_size: int
) -> tuple[Graph, np.ndarray]:
    """Deterministic ring of cliques: a classic community-detection testbed.

    ``n_cliques`` cliques of ``clique_size`` nodes, with one bridge edge
    linking consecutive cliques in a cycle.  The planted labels are the
    clique memberships; any sound CD method recovers them exactly.
    """
    k = check_integer(n_cliques, "n_cliques", minimum=1)
    s = check_integer(clique_size, "clique_size", minimum=2)
    edges: list[tuple[int, int, float]] = []
    labels = np.empty(k * s, dtype=np.int64)
    for c in range(k):
        base = c * s
        labels[base : base + s] = c
        for i in range(s):
            for j in range(i + 1, s):
                edges.append((base + i, base + j, 1.0))
    if k > 1:
        for c in range(k):
            this_last = c * s + (s - 1)
            next_first = ((c + 1) % k) * s
            if k == 2 and c == 1:
                break  # avoid doubling the single bridge for two cliques
            edges.append((this_last, next_first, 1.0))
    return Graph(k * s, edges), labels


def random_regular_community_graph(
    n_communities: int,
    community_size: int,
    intra_degree: int,
    inter_edges: int,
    seed: SeedLike = None,
) -> tuple[Graph, np.ndarray]:
    """Communities of near-regular random graphs joined by random bridges.

    Each community is a ring plus random chords giving every node
    approximately ``intra_degree`` intra-community neighbours;
    ``inter_edges`` uniformly random bridges join distinct communities.
    Produces homogeneous-degree workloads that stress the balance penalty
    (paper Eq. 4) rather than the degree distribution.
    """
    k = check_integer(n_communities, "n_communities", minimum=1)
    size = check_integer(community_size, "community_size", minimum=3)
    d = check_integer(intra_degree, "intra_degree", minimum=2)
    bridges = check_integer(inter_edges, "inter_edges", minimum=0)
    if d >= size:
        raise GraphError(
            f"intra_degree ({d}) must be < community_size ({size})"
        )
    rng = ensure_rng(seed)

    edges: set[tuple[int, int]] = set()
    labels = np.empty(k * size, dtype=np.int64)
    for c in range(k):
        base = c * size
        labels[base : base + size] = c
        for i in range(size):  # ring backbone guarantees connectivity
            u, v = base + i, base + (i + 1) % size
            edges.add((min(u, v), max(u, v)))
        chords_needed = max(0, size * (d - 2) // 2)
        members = np.arange(base, base + size)
        chord_pairs = _sample_distinct_pairs(
            members, members, chords_needed + size, rng, forbid_equal=True
        )
        added = 0
        for pair in chord_pairs:
            if pair not in edges:
                edges.add(pair)
                added += 1
                if added == chords_needed:
                    break

    if k > 1 and bridges > 0:
        added = 0
        guard = 0
        while added < bridges and guard < bridges * 50:
            guard += 1
            ca, cb = rng.choice(k, size=2, replace=False)
            u = int(ca) * size + int(rng.integers(0, size))
            v = int(cb) * size + int(rng.integers(0, size))
            pair = (min(u, v), max(u, v))
            if pair not in edges:
                edges.add(pair)
                added += 1
    edge_u, edge_v = _pairs_to_arrays(edges)
    return Graph.from_arrays(k * size, edge_u, edge_v), labels
