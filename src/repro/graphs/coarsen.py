"""Graph coarsening by heavy-edge matching (paper Algorithm 2 + Eq. 6).

The multilevel algorithm repeatedly merges matched node pairs into
super-nodes.  Pairs are chosen greedily by the hybrid edge score of Eq. 6:

    w(e) = alpha * |N(u) ∩ N(v)| / |N(u) ∪ N(v)|  +  beta * A_uv / max A,

i.e. a convex mix of neighbourhood (Jaccard) overlap and normalised edge
weight.  Coarse graphs keep merged intra-pair edges as *self-loops* and sum
parallel edge weights, which preserves weighted degrees and total edge
weight exactly — so the modularity of a coarse partition equals the
modularity of its projection onto the fine graph.  That invariant is what
makes solving on the coarse level meaningful, and it is property-tested in
``tests/community/test_multilevel.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.graph import Graph
from repro.utils.validation import check_integer, check_positive


def hybrid_edge_scores(
    graph: Graph, alpha: float = 0.5, beta: float = 0.5
) -> np.ndarray:
    """Eq. 6 scores for every canonical edge of ``graph``.

    Parameters
    ----------
    graph:
        Input graph.
    alpha, beta:
        Non-negative weights of the Jaccard-overlap and edge-weight terms.

    Returns
    -------
    Array aligned with ``graph.edge_arrays()``; self-loops score 0 (they can
    never be matched).
    """
    check_positive(alpha, "alpha", allow_zero=True)
    check_positive(beta, "beta", allow_zero=True)
    edge_u, edge_v, edge_w = graph.edge_arrays()
    n_edges = len(edge_u)
    scores = np.zeros(n_edges, dtype=np.float64)
    if n_edges == 0:
        return scores
    max_weight = float(edge_w.max())
    if max_weight <= 0:
        max_weight = 1.0

    # Structural (0/1) adjacency without self-loops; common-neighbour
    # counts for all edges at once via sparse row products.
    structural = graph.sparse_adjacency()
    structural.setdiag(0)
    structural.eliminate_zeros()
    structural.data = np.ones_like(structural.data)
    neighbor_counts = np.asarray(structural.sum(axis=1)).ravel()

    off = edge_u != edge_v
    u_off = edge_u[off]
    v_off = edge_v[off]
    common = np.asarray(
        structural[u_off].multiply(structural[v_off]).sum(axis=1)
    ).ravel()
    union = neighbor_counts[u_off] + neighbor_counts[v_off] - common
    jaccard = np.divide(
        common,
        union,
        out=np.zeros_like(common, dtype=np.float64),
        where=union > 0,
    )
    scores[off] = alpha * jaccard + beta * (edge_w[off] / max_weight)
    return scores


def heavy_edge_matching(
    graph: Graph,
    alpha: float = 0.5,
    beta: float = 0.5,
    max_degree: float | None = None,
) -> np.ndarray:
    """Greedy maximal matching by descending hybrid edge score.

    Parameters
    ----------
    graph, alpha, beta:
        Input graph and Eq. 6 mixing weights.
    max_degree:
        When given, a pair is only matched if the combined weighted degree
        ``d_u + d_v`` stays at or below this cap.  This is the METIS-style
        super-node weight limit that keeps coarsening from collapsing whole
        communities into single super-nodes (which would destroy the very
        structure the base solver is meant to find).

    Returns
    -------
    ``match`` array of length ``n_nodes``: ``match[u] == v`` when ``u`` and
    ``v`` are matched to each other, and ``match[u] == u`` for unmatched
    nodes.
    """
    n = graph.n_nodes
    match = np.arange(n, dtype=np.int64)
    edge_u, edge_v, _ = graph.edge_arrays()
    if len(edge_u) == 0:
        return match
    scores = hybrid_edge_scores(graph, alpha=alpha, beta=beta)
    # Stable tie-break on (score desc, u asc, v asc) keeps matching
    # deterministic across runs and platforms.
    order = np.lexsort((edge_v, edge_u, -scores))
    matched = np.zeros(n, dtype=bool)
    degrees = graph.degrees
    u_list = edge_u[order].tolist()
    v_list = edge_v[order].tolist()
    if max_degree is not None:
        pair_degrees = (degrees[edge_u] + degrees[edge_v])[order].tolist()
    for idx, (u, v) in enumerate(zip(u_list, v_list)):
        if u == v or matched[u] or matched[v]:
            continue
        if max_degree is not None and pair_degrees[idx] > max_degree:
            continue
        matched[u] = matched[v] = True
        match[u] = v
        match[v] = u
    return match


def _matching_to_mapping(match: np.ndarray) -> tuple[np.ndarray, int]:
    """Convert a matching into a dense fine-to-coarse node mapping.

    Each matched pair's representative is its smaller member; coarse ids
    are assigned in ascending representative order, reproducing the
    first-encounter numbering of a sequential scan without one.
    """
    n = len(match)
    representatives = np.minimum(np.arange(n, dtype=np.int64), match)
    unique_reps, mapping = np.unique(representatives, return_inverse=True)
    return mapping.astype(np.int64), len(unique_reps)


@dataclass(frozen=True)
class CoarseningLevel:
    """One coarsening step: the coarse graph plus the fine-to-coarse map."""

    fine_graph: Graph
    coarse_graph: Graph
    mapping: np.ndarray  # mapping[fine_node] -> coarse_node

    def project_labels(self, coarse_labels: np.ndarray) -> np.ndarray:
        """Pull labels on the coarse graph back to the fine graph."""
        coarse_labels = np.asarray(coarse_labels)
        if len(coarse_labels) != self.coarse_graph.n_nodes:
            raise GraphError(
                f"expected {self.coarse_graph.n_nodes} coarse labels, "
                f"got {len(coarse_labels)}"
            )
        return coarse_labels[self.mapping]


def coarsen_graph(
    graph: Graph,
    alpha: float = 0.5,
    beta: float = 0.5,
    max_degree: float | None = None,
) -> CoarseningLevel:
    """One heavy-edge-matching coarsening step (COARSEN in Algorithm 2).

    Matched pairs become super-nodes; parallel edges merge by weight
    summation and intra-pair edges become self-loops, preserving total
    weight and weighted degrees.  ``max_degree`` caps super-node weighted
    degree (see :func:`heavy_edge_matching`).
    """
    match = heavy_edge_matching(
        graph, alpha=alpha, beta=beta, max_degree=max_degree
    )
    mapping, n_coarse = _matching_to_mapping(match)

    # Project edges through the mapping; Graph.from_arrays merges the
    # resulting parallel edges by weight summation (one segment-sum), so
    # no per-edge accumulation is needed here.
    edge_u, edge_v, edge_w = graph.edge_arrays()
    coarse = Graph.from_arrays(
        n_coarse, mapping[edge_u], mapping[edge_v], edge_w
    )
    return CoarseningLevel(fine_graph=graph, coarse_graph=coarse, mapping=mapping)


class CoarseningHierarchy:
    """The full coarsening ladder built by Algorithm 2's while-loop.

    Levels are ordered fine-to-coarse: ``levels[0].fine_graph`` is the input
    graph and ``levels[-1].coarse_graph`` is the coarsest graph handed to
    the base solver.
    """

    def __init__(self, levels: list[CoarseningLevel]) -> None:
        if not levels:
            raise GraphError("a hierarchy needs at least one level")
        self.levels = levels

    @property
    def finest_graph(self) -> Graph:
        """The original input graph."""
        return self.levels[0].fine_graph

    @property
    def coarsest_graph(self) -> Graph:
        """The graph at the top of the ladder."""
        return self.levels[-1].coarse_graph

    @property
    def n_levels(self) -> int:
        """Number of coarsening steps performed."""
        return len(self.levels)

    def graphs(self) -> list[Graph]:
        """All graphs fine-to-coarse (length ``n_levels + 1``)."""
        return [level.fine_graph for level in self.levels] + [
            self.coarsest_graph
        ]

    def project_to_finest(self, coarse_labels: np.ndarray) -> np.ndarray:
        """Project labels from the coarsest graph down to the input graph."""
        labels = np.asarray(coarse_labels)
        for level in reversed(self.levels):
            labels = level.project_labels(labels)
        return labels


def coarsen_to_threshold(
    graph: Graph,
    threshold: int,
    alpha: float = 0.5,
    beta: float = 0.5,
    max_levels: int = 50,
    max_degree: float | None = None,
) -> CoarseningHierarchy | None:
    """Coarsen until the graph has at most ``threshold`` nodes.

    Mirrors Algorithm 2's coarsening phase: iterate COARSEN while
    ``|V| > threshold``.  Stops early when a step no longer shrinks the
    graph (no augmenting matches remain, or every remaining match would
    exceed the ``max_degree`` super-node cap).  Returns ``None`` when the
    input is already at or below the threshold, signalling a direct solve.
    """
    check_integer(threshold, "threshold", minimum=1)
    check_integer(max_levels, "max_levels", minimum=1)
    if graph.n_nodes <= threshold:
        return None
    levels: list[CoarseningLevel] = []
    current = graph
    for _ in range(max_levels):
        if current.n_nodes <= threshold:
            break
        level = coarsen_graph(
            current, alpha=alpha, beta=beta, max_degree=max_degree
        )
        if level.coarse_graph.n_nodes >= current.n_nodes:
            break  # matching made no progress; graph is edge-free or tiny
        levels.append(level)
        current = level.coarse_graph
    if not levels:
        return None
    return CoarseningHierarchy(levels)
