"""Descriptive graph statistics.

The paper reports instances by node count, edge count and density
(Tables I and II); :func:`summarize_graph` computes those plus degree and
clustering statistics used when validating that a synthetic substitute
matches a published instance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph


@dataclass(frozen=True)
class GraphSummary:
    """Descriptive statistics for one graph instance."""

    n_nodes: int
    n_edges: int
    density: float
    mean_degree: float
    max_degree: float
    degree_std: float
    clustering_coefficient: float
    n_components: int

    def as_row(self) -> dict[str, float]:
        """Flatten to a plain dict for tabular reporting."""
        return {
            "nodes": self.n_nodes,
            "edges": self.n_edges,
            "density_pct": 100.0 * self.density,
            "mean_degree": self.mean_degree,
            "max_degree": self.max_degree,
            "degree_std": self.degree_std,
            "clustering": self.clustering_coefficient,
            "components": self.n_components,
        }


def average_clustering(graph: Graph, max_nodes: int = 4000) -> float:
    """Average local clustering coefficient (unweighted).

    For graphs larger than ``max_nodes`` a deterministic stride sample of
    nodes is used, which keeps the statistic cheap on the Table II scale
    while remaining reproducible.
    """
    n = graph.n_nodes
    if n == 0:
        return 0.0
    if n > max_nodes:
        stride = int(np.ceil(n / max_nodes))
        nodes = range(0, n, stride)
    else:
        nodes = range(n)

    neighbor_sets = {}
    total = 0.0
    count = 0
    for node in nodes:
        neighbors = [int(x) for x in graph.neighbors(node) if int(x) != node]
        count += 1
        degree = len(neighbors)
        if degree < 2:
            continue
        if node not in neighbor_sets:
            neighbor_sets[node] = set(neighbors)
        links = 0
        for i, a in enumerate(neighbors):
            if a not in neighbor_sets:
                neighbor_sets[a] = {
                    int(x) for x in graph.neighbors(a) if int(x) != a
                }
            set_a = neighbor_sets[a]
            for b in neighbors[i + 1 :]:
                if b in set_a:
                    links += 1
        total += 2.0 * links / (degree * (degree - 1))
    return total / count if count else 0.0


def summarize_graph(graph: Graph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``graph``."""
    degrees = np.asarray(graph.degrees)
    if graph.n_nodes:
        mean_degree = float(degrees.mean())
        max_degree = float(degrees.max())
        degree_std = float(degrees.std())
    else:
        mean_degree = max_degree = degree_std = 0.0
    return GraphSummary(
        n_nodes=graph.n_nodes,
        n_edges=graph.n_edges,
        density=graph.density,
        mean_degree=mean_degree,
        max_degree=max_degree,
        degree_std=degree_std,
        clustering_coefficient=average_clustering(graph),
        n_components=len(graph.connected_components()),
    )
