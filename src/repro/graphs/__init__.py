"""Graph substrate: CSR graphs, generators, IO, statistics and coarsening."""

from repro.graphs.graph import Graph
from repro.graphs.coarsen import (
    CoarseningHierarchy,
    CoarseningLevel,
    coarsen_graph,
    coarsen_to_threshold,
    heavy_edge_matching,
    hybrid_edge_scores,
)
from repro.graphs.generators import (
    erdos_renyi_graph,
    planted_partition_graph,
    power_law_cluster_graph,
    random_regular_community_graph,
    ring_of_cliques,
    stochastic_block_model_graph,
)
from repro.graphs.lfr import lfr_graph
from repro.graphs.io import read_edge_list, write_edge_list
from repro.graphs.analysis import GraphSummary, summarize_graph

__all__ = [
    "Graph",
    "CoarseningHierarchy",
    "CoarseningLevel",
    "coarsen_graph",
    "coarsen_to_threshold",
    "heavy_edge_matching",
    "hybrid_edge_scores",
    "erdos_renyi_graph",
    "planted_partition_graph",
    "power_law_cluster_graph",
    "random_regular_community_graph",
    "ring_of_cliques",
    "stochastic_block_model_graph",
    "lfr_graph",
    "read_edge_list",
    "write_edge_list",
    "GraphSummary",
    "summarize_graph",
]
