"""Command-line interface.

Two subcommands::

    repro detect  --input graph.txt --communities 4 [--solver qhd ...]
    repro bench   --experiment fig3|fig4|table1|table2|fig5|fig6 [--scale S]

``detect`` runs the paper's pipeline on an edge-list file and prints the
assignment plus quality metrics.  ``bench`` regenerates one evaluation
artefact at a chosen scale and prints the report.  Both are also callable
programmatically via :func:`main`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np


def _build_solver(name: str, seed: int | None, time_limit: float):
    """Instantiate a solver by CLI name."""
    from repro.qhd.solver import QhdSolver
    from repro.solvers import (
        BranchAndBoundSolver,
        GreedySolver,
        SimulatedAnnealingSolver,
        TabuSolver,
    )

    solvers = {
        "qhd": lambda: QhdSolver(seed=seed),
        "branch-and-bound": lambda: BranchAndBoundSolver(
            time_limit=time_limit
        ),
        "simulated-annealing": lambda: SimulatedAnnealingSolver(seed=seed),
        "tabu": lambda: TabuSolver(seed=seed),
        "greedy": lambda: GreedySolver(seed=seed),
    }
    try:
        return solvers[name]()
    except KeyError:
        raise SystemExit(
            f"unknown solver {name!r}; choose from {sorted(solvers)}"
        ) from None


def _cmd_detect(args: argparse.Namespace) -> int:
    from repro.community.detector import QhdCommunityDetector
    from repro.community.metrics import partition_summary
    from repro.graphs.io import read_edge_list

    graph = read_edge_list(args.input, weighted=args.weighted)
    print(
        f"loaded {args.input}: {graph.n_nodes} nodes, "
        f"{graph.n_edges} edges"
    )
    solver = _build_solver(args.solver, args.seed, args.time_limit)
    detector = QhdCommunityDetector(
        solver=solver,
        direct_threshold=args.direct_threshold,
        seed=args.seed,
    )
    result = detector.detect(graph, n_communities=args.communities)

    print(f"method:      {result.method}")
    print(f"modularity:  {result.modularity:.4f}")
    print(f"communities: {result.n_communities}")
    print(f"wall time:   {result.wall_time:.2f}s")
    summary = partition_summary(graph, result.labels)
    print(f"coverage:    {summary.coverage:.3f}")
    print(
        f"sizes:       min {summary.min_size}, max {summary.max_size}"
    )
    if args.output:
        np.savetxt(args.output, result.labels, fmt="%d")
        print(f"labels written to {args.output}")
    elif args.print_labels:
        print("labels:", " ".join(str(c) for c in result.labels))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    scale = args.scale
    if args.experiment in ("fig3", "fig4"):
        from repro.experiments.solver_comparison import (
            SolverComparisonConfig,
            run_solver_comparison,
        )

        config = SolverComparisonConfig(
            portfolio_scale=max(0.002, 0.02 * scale),
            min_time_limit=2.0 if args.experiment == "fig4" else 1.0,
        )
        report = run_solver_comparison(config)
        print(report.to_text())
    elif args.experiment in ("table1", "fig5"):
        from repro.experiments.small_networks import (
            SmallNetworksConfig,
            run_small_networks,
        )

        config = SmallNetworksConfig(
            instance_scale=min(1.0, 0.2 * scale)
        )
        print(run_small_networks(config).to_text())
    elif args.experiment in ("table2", "fig6"):
        from repro.experiments.large_networks import (
            LargeNetworksConfig,
            run_large_networks,
        )

        config = LargeNetworksConfig(
            instance_scale=min(1.0, 0.1 * scale), n_seeds=2
        )
        print(run_large_networks(config).to_text())
    else:
        raise SystemExit(f"unknown experiment {args.experiment!r}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Scalable community detection with Quantum Hamiltonian "
            "Descent (DAC 2025 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    detect = sub.add_parser(
        "detect", help="detect communities in an edge-list file"
    )
    detect.add_argument("--input", required=True, help="edge-list path")
    detect.add_argument(
        "--communities", type=int, required=True, help="max communities k"
    )
    detect.add_argument(
        "--solver",
        default="qhd",
        help="qhd | branch-and-bound | simulated-annealing | tabu | greedy",
    )
    detect.add_argument("--seed", type=int, default=None)
    detect.add_argument(
        "--time-limit",
        type=float,
        default=60.0,
        help="budget for the exact solver (seconds)",
    )
    detect.add_argument(
        "--direct-threshold",
        type=int,
        default=1000,
        help="largest network solved by one direct QUBO (paper: 1000)",
    )
    detect.add_argument("--weighted", action="store_true")
    detect.add_argument(
        "--output", default=None, help="write labels to this file"
    )
    detect.add_argument("--print-labels", action="store_true")
    detect.set_defaults(func=_cmd_detect)

    bench = sub.add_parser(
        "bench", help="regenerate one paper table/figure"
    )
    bench.add_argument(
        "--experiment",
        required=True,
        help="fig3 | fig4 | table1 | fig5 | table2 | fig6",
    )
    bench.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale multiplier (1.0 = laptop-calibrated)",
    )
    bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
