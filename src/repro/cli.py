"""Command-line interface.

Two subcommands::

    repro detect  --input graph.txt --communities 4 [--solver qhd ...]
    repro bench   --experiment fig3|fig4|table1|table2|fig5|fig6 [--scale S]

``detect`` runs the paper's pipeline on an edge-list file and prints the
assignment plus quality metrics; ``--spec spec.json`` drives the run from
a declarative :class:`repro.api.RunSpec` instead of individual flags, and
``--artifact out.json`` persists the full :class:`repro.api.RunArtifact`.
``bench`` regenerates one evaluation artefact at a chosen scale and
prints the report.  ``repro serve --port N --max-queue M`` exposes
``POST /detect`` / ``POST /solve`` over HTTP through one warm session
(:mod:`repro.server`), shedding load with 429 beyond the queue bound
and draining gracefully on SIGTERM/SIGINT.  ``repro lint [paths]``
runs the project-invariant static analysis (:mod:`repro.analysis`)
and exits non-zero on findings.
``repro --list-solvers`` enumerates every registered solver and
detector.  Everything resolves through the :mod:`repro.api` registries
— there is no CLI-private solver table.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np


class _ListSolversAction(argparse.Action):
    """``--list-solvers``: print the registries and exit (like --version)."""

    def __call__(self, parser, namespace, values, option_string=None):
        from repro.api import DETECTORS, SOLVERS

        print("solvers:   " + " ".join(SOLVERS.available()))
        print("detectors: " + " ".join(DETECTORS.available()))
        parser.exit(0)


def _build_solver(name: str, seed: int | None, time_limit: float | None):
    """Instantiate a solver by registry name.

    ``seed`` and ``time_limit`` are threaded into every solver that
    accepts them (all of them except brute-force's ``time_limit``);
    unsupported knobs warn instead of being silently dropped.
    """
    from repro.api import RegistryError, build_solver

    try:
        return build_solver(name, seed=seed, time_limit=time_limit)
    except RegistryError as error:
        raise SystemExit(str(error)) from None


def _print_result(graph, result, output, print_labels) -> None:
    from repro.community.metrics import partition_summary

    print(f"method:      {result.method}")
    print(f"modularity:  {result.modularity:.4f}")
    print(f"communities: {result.n_communities}")
    print(f"wall time:   {result.wall_time:.2f}s")
    summary = partition_summary(graph, result.labels)
    print(f"coverage:    {summary.coverage:.3f}")
    print(
        f"sizes:       min {summary.min_size}, max {summary.max_size}"
    )
    if output:
        np.savetxt(output, result.labels, fmt="%d")
        print(f"labels written to {output}")
    elif print_labels:
        print("labels:", " ".join(str(c) for c in result.labels))


def _merge_spec_overrides(spec, args: argparse.Namespace):
    """Apply explicitly-given CLI flags on top of a loaded RunSpec.

    ``--communities``/``--seed`` replace the spec's values;
    ``--time-limit`` and ``--direct-threshold`` are merged into the
    solver/detector configs when the spec's classes accept them and the
    spec does not already pin them, and warn otherwise — no flag is
    silently dropped.
    """
    import warnings

    import repro.api as api

    if args.communities is not None:
        spec = spec.replace(n_communities=args.communities)
    if args.seed is not None:
        spec = spec.replace(seed=args.seed)
    if args.time_limit is not None:
        detector_cls = (
            api.DETECTORS.get(spec.detector)
            if spec.detector in api.DETECTORS
            else None
        )
        shaping = {"solver"} | set(
            getattr(detector_cls, "default_solver_fields", ())
        )
        if (
            spec.solver is None
            and detector_cls is not None
            and "solver" in detector_cls.config_fields()
            and not (shaping & set(spec.detector_config))
        ):
            # The spec relies on the detector's default QHD solver and
            # does not customise it (no shaping fields set), so the
            # default is exactly a default-configured "qhd" — name it
            # explicitly so the budget can be threaded in, just like
            # the flag-driven path does.
            spec = spec.replace(
                solver="qhd",
                solver_config={"time_limit": args.time_limit},
            )
        else:
            solver_fields = (
                api.SOLVERS.get(spec.solver).config_fields()
                if spec.solver is not None and spec.solver in api.SOLVERS
                else ()
            )
            if (
                "time_limit" in solver_fields
                and "time_limit" not in spec.solver_config
            ):
                spec = spec.replace(
                    solver_config={
                        **spec.solver_config, "time_limit": args.time_limit
                    }
                )
            else:
                warnings.warn(
                    "--time-limit is ignored: the spec's solver does not "
                    "accept it, already pins one, or the spec customises "
                    "the detector's built-in solver",
                    RuntimeWarning,
                )
    if args.direct_threshold is not None:
        detector_fields = (
            api.DETECTORS.get(spec.detector).config_fields()
            if spec.detector in api.DETECTORS
            else ()
        )
        if (
            "direct_threshold" in detector_fields
            and "direct_threshold" not in spec.detector_config
        ):
            spec = spec.replace(
                detector_config={
                    **spec.detector_config,
                    "direct_threshold": args.direct_threshold,
                }
            )
        else:
            warnings.warn(
                "--direct-threshold is ignored: the spec's detector "
                "does not accept it or already pins one",
                RuntimeWarning,
            )
    return spec


def _session_line(stats: dict) -> str:
    """Render the resolved session backend for CLI output."""
    wire = stats.get("wire") or {}
    wire_note = (
        f", {wire['mode']} wire" if stats["executor"] == "process" else ""
    )
    return (
        f"executor:     {stats['executor']} "
        f"({stats['max_workers']} workers{wire_note})"
    )


def _detect_repeated(
    api,
    graph,
    spec,
    repeats: int,
    executor: str = "thread",
    max_workers: int | None = None,
    wire: str = "auto",
):
    """Run ``spec`` ``repeats`` times through one reusable session.

    Demonstrates (and exercises) the session runtime from the CLI: the
    repeats go through :meth:`repro.api.Session.detect_batch`, so
    ``--executor``/``--max-workers``/``--wire`` pick the backend
    (persistent thread pool, or a process pool with per-worker engine
    pools and pickle vs shared-memory input handoff) and same-shape QHD
    runs lease cached evolution engines instead of rebuilding phase
    tables and workspace buffers.  Seeded runs are bit-identical for
    every executor and wire, so only the last artifact is kept.
    """
    with api.Session(
        max_workers=max_workers, executor=executor, wire=wire
    ) as session:
        artifacts = session.detect_batch([graph] * repeats, spec)
        stats = session.stats()
    reference = artifacts[0].result.labels
    if spec.seed is not None:
        for artifact in artifacts[1:]:
            if not np.array_equal(artifact.result.labels, reference):
                raise SystemExit(
                    "seeded repeat runs diverged — this is a bug, "
                    "please report it"
                )
    print(_session_line(stats))
    print(f"repeat runs:  {repeats}")
    for number, artifact in enumerate(artifacts, start=1):
        timings = artifact.timings
        print(
            f"  run {number:<3d} total {timings['total'] * 1e3:8.2f} ms "
            f"(build {timings['build'] * 1e3:7.2f} ms, "
            f"run {timings['run'] * 1e3:8.2f} ms)"
        )
    pool_stats = stats.get("engine_pool") or {}
    if pool_stats.get("hits") or pool_stats.get("misses"):
        print(
            f"engine pool:  {pool_stats.get('hits', 0)} hits / "
            f"{pool_stats.get('misses', 0)} misses, "
            f"{pool_stats.get('setup_seconds', 0.0) * 1e3:.2f} ms "
            f"spent on engine setup"
        )
    return artifacts[-1]


def _cmd_detect(args: argparse.Namespace) -> int:
    import repro.api as api
    from repro.graphs.io import read_edge_list

    graph = read_edge_list(args.input, weighted=args.weighted)
    print(
        f"loaded {args.input}: {graph.n_nodes} nodes, "
        f"{graph.n_edges} edges"
    )

    if args.spec:
        spec = _merge_spec_overrides(api.RunSpec.from_file(args.spec), args)
    else:
        if args.communities is None:
            raise SystemExit(
                "--communities is required (or provide it via --spec)"
            )
        # Build the solver once (warn-or-apply seed/time_limit
        # threading), then lower it back to a {name, config} spec dict
        # so the --artifact spec stays declarative and reloadable.
        solver = _build_solver(
            args.solver,
            args.seed,
            60.0 if args.time_limit is None else args.time_limit,
        )
        spec = api.RunSpec(
            detector="qhd",
            detector_config={
                "direct_threshold": (
                    1000
                    if args.direct_threshold is None
                    else args.direct_threshold
                ),
                "solver": api.solver_to_spec(solver),
            },
            solver=args.solver,
            n_communities=args.communities,
            seed=args.seed,
        )
    if spec.n_communities is None:
        raise SystemExit("spec does not define n_communities")

    try:
        if args.repeat > 1:
            artifact = _detect_repeated(
                api,
                graph,
                spec,
                args.repeat,
                executor=args.executor,
                max_workers=args.max_workers,
                wire=args.wire,
            )
        else:
            artifact = api.detect(graph, spec)
    except (api.RegistryError, api.SpecError, api.ConfigError) as error:
        raise SystemExit(str(error)) from None
    _print_result(graph, artifact.result, args.output, args.print_labels)
    if args.artifact:
        with open(args.artifact, "w", encoding="utf-8") as handle:
            handle.write(artifact.to_json())
        print(f"run artifact written to {args.artifact}")
    return 0


def _read_event_batches(path: str) -> list:
    """Parse an events JSONL file into edge-event batches.

    One batch per non-empty line: a JSON array is a whole batch of
    events, a JSON object is a single-event batch.  Events use the
    :meth:`repro.graphs.Graph.apply_updates` dict form
    (``{"op": "insert"|"delete"|"reweight", "u": ..., "v": ...,
    "w": ...}``).
    """
    import json

    batches = []
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise SystemExit(
                    f"{path}:{number}: invalid JSON event line: {error}"
                ) from None
            if isinstance(payload, dict):
                batches.append([payload])
            elif isinstance(payload, list):
                batches.append(payload)
            else:
                raise SystemExit(
                    f"{path}:{number}: event line must be a JSON object "
                    f"or array, got {type(payload).__name__}"
                )
    return batches


def _cmd_stream(args: argparse.Namespace) -> int:
    import repro.api as api
    from repro.graphs.io import read_edge_list

    graph = read_edge_list(args.input, weighted=args.weighted)
    print(
        f"loaded {args.input}: {graph.n_nodes} nodes, "
        f"{graph.n_edges} edges"
    )
    spec = api.RunSpec.from_file(args.spec)
    if args.communities is not None:
        spec = spec.replace(n_communities=args.communities)
    if args.seed is not None:
        spec = spec.replace(seed=args.seed)
    if spec.n_communities is None:
        raise SystemExit("spec does not define n_communities")
    batches = _read_event_batches(args.updates)

    artifacts = []
    try:
        session = api.Session(
            max_workers=args.max_workers,
            executor=args.executor,
            wire=args.wire,
        )
    except api.SessionError as error:
        raise SystemExit(str(error)) from None
    print(_session_line(session.stats()))
    try:
        stream = session.detect_stream(
            graph, batches, spec, warm_start=not args.cold
        )
        for artifact in stream:
            result = artifact.result
            touched = result.metadata.get("stream_touched_nodes", 0)
            warm = result.metadata.get("warm_selected")
            warm_note = (
                ""
                if warm is None
                else f", warm start {'won' if warm else 'lost'}"
            )
            print(
                f"batch {artifact.index}: modularity "
                f"{result.modularity:.4f}, "
                f"{result.n_communities} communities, "
                f"{touched} touched node(s){warm_note}"
            )
            artifacts.append(artifact)
    except (api.RegistryError, api.SpecError, api.ConfigError) as error:
        raise SystemExit(str(error)) from None
    finally:
        session.close()
    if args.artifact:
        payload = "[" + ",\n".join(a.to_json() for a in artifacts) + "]"
        with open(args.artifact, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"stream artifacts written to {args.artifact}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import repro.api as api

    scale = args.scale
    try:
        session = api.Session(
            max_workers=args.max_workers,
            executor=args.executor,
            wire=args.wire,
        )
    except api.SessionError as error:
        raise SystemExit(str(error)) from None
    with session:
        print(_session_line(session.stats()))
        if args.experiment in ("fig3", "fig4"):
            from repro.experiments.solver_comparison import (
                SolverComparisonConfig,
                run_solver_comparison,
            )

            config = SolverComparisonConfig(
                portfolio_scale=max(0.002, 0.02 * scale),
                min_time_limit=2.0 if args.experiment == "fig4" else 1.0,
            )
            report = run_solver_comparison(config)
            print(report.to_text())
        elif args.experiment in ("table1", "fig5"):
            from repro.experiments.small_networks import (
                SmallNetworksConfig,
                run_small_networks,
            )

            config = SmallNetworksConfig(
                instance_scale=min(1.0, 0.2 * scale)
            )
            print(run_small_networks(config).to_text())
        elif args.experiment in ("table2", "fig6"):
            from repro.experiments.large_networks import (
                LargeNetworksConfig,
                run_large_networks,
            )

            config = LargeNetworksConfig(
                instance_scale=min(1.0, 0.1 * scale), n_seeds=2
            )
            print(
                run_large_networks(config, session=session).to_text()
            )
        else:
            raise SystemExit(f"unknown experiment {args.experiment!r}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    import repro.api as api
    from repro.server import ReproServer

    try:
        server = ReproServer(
            host=args.host,
            port=args.port,
            max_queue=args.max_queue,
            max_body_bytes=args.max_body_bytes,
            max_workers=args.max_workers,
            executor=args.executor,
            wire=args.wire,
        )
    except (api.SessionError, OSError) as error:
        raise SystemExit(str(error)) from None
    print(
        f"serving on {server.url} "
        f"(queue bound {server.max_queue}, "
        f"POST /detect /solve, GET /healthz /stats)",
        flush=True,
    )
    print(_session_line(server.session.stats()), flush=True)

    def _drain(signum: int, frame: object) -> None:
        print(
            f"received {signal.Signals(signum).name}; draining "
            f"(in-flight requests finish, new ones get 503)",
            flush=True,
        )
        server.request_shutdown()

    previous = {
        sig: signal.signal(sig, _drain)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        server.serve_forever()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    counters = server.stats()["server"]
    print(
        f"drained: {counters['served']} served, "
        f"{counters['shed']} shed, "
        f"{counters['timed_out']} timed out, "
        f"{counters['errors']} errors"
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import RULES, LintEngine, LintRuleError, load_config
    from repro.analysis.engine import render_json, render_text

    if args.list_rules:
        for rule_id in RULES.available():
            print(f"{rule_id}  {RULES.get(rule_id).summary}")
        return 0
    try:
        config = load_config(args.config)
        engine = LintEngine(rules=args.rules, config=config)
        findings = engine.lint_paths(args.paths or ["src"])
    except (LintRuleError, FileNotFoundError, ValueError) as error:
        raise SystemExit(str(error)) from None
    report = render_json(findings) if args.json else render_text(findings)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"lint report written to {args.output}")
    elif report:
        print(report)
    if findings:
        print(
            f"repro lint: {len(findings)} finding(s) in "
            f"{len({f.path for f in findings})} file(s)",
            file=sys.stderr,
        )
        return 1
    if not args.output and not args.json:
        print("repro lint: clean")
    return 0


def _add_session_flags(
    parser: argparse.ArgumentParser, default_executor: str
) -> None:
    """Attach the uniform session-backend flags to a subcommand.

    ``repro detect --repeat``, ``repro stream``, ``repro bench`` and
    ``repro serve`` all drive :class:`repro.api.Session`; these three
    flags pick its backend identically everywhere, and each command
    prints the resolved backend it ran on.
    """
    parser.add_argument(
        "--executor",
        choices=("thread", "process", "auto"),
        default=default_executor,
        help=(
            "session batch backend: 'thread' (one persistent thread "
            "pool), 'process' (process pool with per-worker engine "
            "pools), or 'auto' (processes on multi-core machines; "
            f"default: {default_executor})"
        ),
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="session executor width (default: min(8, cpu_count))",
    )
    parser.add_argument(
        "--wire",
        choices=("pickle", "shm", "auto"),
        default="auto",
        help=(
            "process-backend input handoff: 'shm' ships inputs "
            "through shared-memory segments, 'pickle' inside task "
            "payloads; 'auto' (default) resolves to shm.  No-op on "
            "the thread backend"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Scalable community detection with Quantum Hamiltonian "
            "Descent (DAC 2025 reproduction)"
        ),
    )
    parser.add_argument(
        "--list-solvers",
        nargs=0,
        action=_ListSolversAction,
        help="list registered solvers and detectors, then exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    detect = sub.add_parser(
        "detect", help="detect communities in an edge-list file"
    )
    detect.add_argument("--input", required=True, help="edge-list path")
    detect.add_argument(
        "--communities",
        type=int,
        default=None,
        help="max communities k (required unless --spec provides it)",
    )
    detect.add_argument(
        "--solver",
        default="qhd",
        help="registered solver name (see repro --list-solvers)",
    )
    detect.add_argument(
        "--spec",
        default=None,
        help="JSON RunSpec file driving the whole run (overrides --solver)",
    )
    detect.add_argument("--seed", type=int, default=None)
    detect.add_argument(
        "--time-limit",
        type=float,
        default=None,
        help=(
            "wall-clock budget in seconds, applied to every solver "
            "that supports one (default 60 for flag-driven runs; "
            "merged into --spec runs when the spec's solver accepts it)"
        ),
    )
    detect.add_argument(
        "--direct-threshold",
        type=int,
        default=None,
        help=(
            "largest network solved by one direct QUBO "
            "(paper and default: 1000)"
        ),
    )
    detect.add_argument(
        "--repeat",
        type=int,
        default=1,
        help=(
            "run the spec this many times through one reusable session "
            "(pooled QHD engines; prints per-run timings) and report "
            "the last run"
        ),
    )
    _add_session_flags(detect, default_executor="thread")
    detect.add_argument("--weighted", action="store_true")
    detect.add_argument(
        "--output", default=None, help="write labels to this file"
    )
    detect.add_argument(
        "--artifact",
        default=None,
        help="write the JSON run artifact (spec+result+timings) here",
    )
    detect.add_argument("--print-labels", action="store_true")
    detect.set_defaults(func=_cmd_detect)

    lint = sub.add_parser(
        "lint",
        help="run the project-invariant static analysis (REP rules)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--rule",
        action="append",
        dest="rules",
        default=None,
        metavar="REPnnn",
        help="run only this rule (repeatable; default: all registered)",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="emit the JSON report instead of file:line:col text",
    )
    lint.add_argument(
        "--output",
        default=None,
        help="write the report to this file instead of stdout",
    )
    lint.add_argument(
        "--config",
        default=None,
        help=(
            "pyproject.toml providing [tool.repro.lint] overrides "
            "(default: ./pyproject.toml when present)"
        ),
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules with summaries, then exit",
    )
    lint.set_defaults(func=_cmd_lint)

    stream = sub.add_parser(
        "stream",
        help="stream detection over edge-event batches (JSONL)",
    )
    stream.add_argument("--input", required=True, help="edge-list path")
    stream.add_argument(
        "--spec",
        required=True,
        help="JSON RunSpec file re-run after every event batch",
    )
    stream.add_argument(
        "--updates",
        required=True,
        help=(
            "JSONL event file: one batch per line — a JSON array of "
            "events or a single {op,u,v,w} event object"
        ),
    )
    stream.add_argument(
        "--communities",
        type=int,
        default=None,
        help="override the spec's n_communities",
    )
    stream.add_argument(
        "--seed", type=int, default=None, help="override the spec's seed"
    )
    stream.add_argument(
        "--cold",
        action="store_true",
        help=(
            "disable warm starts: run each batch cold instead of "
            "patching the QUBO and seeding with the previous partition"
        ),
    )
    _add_session_flags(stream, default_executor="auto")
    stream.add_argument("--weighted", action="store_true")
    stream.add_argument(
        "--artifact",
        default=None,
        help="write the JSON array of per-batch run artifacts here",
    )
    stream.set_defaults(func=_cmd_stream)

    serve = sub.add_parser(
        "serve",
        help=(
            "serve detect/solve specs over HTTP through one warm "
            "session (stdlib server, bounded queue)"
        ),
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8000,
        help=(
            "bind port (default: 8000; 0 binds an ephemeral port, "
            "printed on startup)"
        ),
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=8,
        help=(
            "bound on in-flight + queued requests; beyond it the "
            "server sheds load with 429 + Retry-After (default: 8)"
        ),
    )
    serve.add_argument(
        "--max-body-bytes",
        type=int,
        default=8 * 1024 * 1024,
        help="request-body size cap; larger bodies get 413 "
        "(default: 8 MiB)",
    )
    _add_session_flags(serve, default_executor="auto")
    serve.set_defaults(func=_cmd_serve)

    bench = sub.add_parser(
        "bench", help="regenerate one paper table/figure"
    )
    bench.add_argument(
        "--experiment",
        required=True,
        help="fig3 | fig4 | table1 | fig5 | table2 | fig6",
    )
    bench.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale multiplier (1.0 = laptop-calibrated)",
    )
    _add_session_flags(bench, default_executor="auto")
    bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
