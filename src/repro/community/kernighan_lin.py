"""Kernighan-Lin-style pairwise swap refinement.

Single-node local moving (REFINE in Algorithm 2) cannot escape local
optima where improving a partition requires *exchanging* two nodes between
communities — the classic situation under balance constraints, where any
single move worsens the size penalty.  This module adds KL-style swap
refinement: repeatedly find the node pair ``(u in A, v in B)`` whose
exchange yields the largest modularity gain and apply it while positive.

Swaps preserve community sizes exactly, so this refinement is the natural
companion of the Eq. 4 balance term.
"""

from __future__ import annotations

import numpy as np

from repro.community.modularity import (
    community_degree_sums,
    node_to_community_weights,
)
from repro.exceptions import PartitionError
from repro.graphs.graph import Graph
from repro.utils.validation import check_integer


def swap_gain(
    graph: Graph,
    labels: np.ndarray,
    u: int,
    v: int,
    degree_sums: np.ndarray,
) -> float:
    """Modularity gain of exchanging communities of nodes ``u`` and ``v``.

    Closed form.  With ``u in a``, ``v in b``, ``w_x[c]`` the weight from
    node ``x`` into community ``c`` (self-loops excluded) and
    ``delta = d_v - d_u``:

    * internal-weight change:
      ``[w_u[b] - w_u[a] + w_v[a] - w_v[b] - 2 w_uv] / m``
      (the shared edge stays inter-community but is counted inside both
      single-move terms, hence the ``-2 w_uv`` correction);
    * null-model change: ``-(delta / 2m^2) (D_a - D_b + delta)``.
    """
    a, b = int(labels[u]), int(labels[v])
    if a == b:
        return 0.0
    m = graph.total_weight
    d_u, d_v = graph.degree(u), graph.degree(v)
    n_comm = len(degree_sums)
    w_u = node_to_community_weights(graph, u, labels, n_comm)
    w_v = node_to_community_weights(graph, v, labels, n_comm)
    w_uv = graph.edge_weight(u, v)

    internal = (
        w_u[b] - w_u[a] + w_v[a] - w_v[b] - 2.0 * w_uv
    ) / m
    delta = d_v - d_u
    null = -delta * (degree_sums[a] - degree_sums[b] + delta) / (
        2.0 * m * m
    )
    return float(internal + null)


def kl_swap_refine(
    graph: Graph,
    labels: np.ndarray,
    max_swaps: int = 100,
    tolerance: float = 1e-12,
    candidate_edges_only: bool = True,
) -> tuple[np.ndarray, int]:
    """Greedy best-swap refinement until no positive swap remains.

    Parameters
    ----------
    graph:
        The graph being partitioned.
    labels:
        Initial assignment (not mutated).
    max_swaps:
        Cap on applied swaps.
    tolerance:
        Minimum gain for a swap.
    candidate_edges_only:
        When true (default) candidates are cross-community pairs of
        *boundary nodes* (nodes incident to at least one inter-community
        edge) — the nodes whose reassignment can trade connectivity.
        When false every cross-community node pair is scanned (O(n^2),
        exact but slow).

    Returns
    -------
    (labels, n_swaps): refined labels and the number of swaps applied.
    """
    check_integer(max_swaps, "max_swaps", minimum=0)
    labels = np.asarray(labels, dtype=np.int64).copy()
    if labels.shape != (graph.n_nodes,):
        raise PartitionError(
            f"labels must have shape ({graph.n_nodes},), got {labels.shape}"
        )
    if graph.total_weight <= 0:
        return labels, 0

    n_swaps = 0
    for _ in range(max_swaps):
        degree_sums = community_degree_sums(graph, labels)
        if candidate_edges_only:
            edge_u, edge_v, _ = graph.edge_arrays()
            boundary: set[int] = set()
            for u, v in zip(edge_u.tolist(), edge_v.tolist()):
                if labels[u] != labels[v]:
                    boundary.add(int(u))
                    boundary.add(int(v))
            boundary_nodes = sorted(boundary)
            candidates = [
                (u, v)
                for i, u in enumerate(boundary_nodes)
                for v in boundary_nodes[i + 1 :]
                if labels[u] != labels[v]
            ]
        else:
            candidates = [
                (u, v)
                for u in range(graph.n_nodes)
                for v in range(u + 1, graph.n_nodes)
                if labels[u] != labels[v]
            ]
        best_gain = tolerance
        best_pair: tuple[int, int] | None = None
        for u, v in candidates:
            gain = swap_gain(graph, labels, u, v, degree_sums)
            if gain > best_gain:
                best_gain = gain
                best_pair = (u, v)
        if best_pair is None:
            break
        u, v = best_pair
        labels[u], labels[v] = labels[v], labels[u]
        n_swaps += 1
    return labels, n_swaps
