"""Graph aggregation by community labels.

Collapsing each community into a super-node (keeping intra-community weight
as a self-loop) preserves weighted degrees and total weight, so the
modularity of any partition of the aggregate equals the modularity of its
pre-image — the identity both Louvain's second phase and the multilevel
pipeline rely on.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import PartitionError
from repro.graphs.graph import Graph


def aggregate_graph(
    graph: Graph, labels: np.ndarray
) -> tuple[Graph, np.ndarray]:
    """Collapse communities of ``graph`` into super-nodes.

    Parameters
    ----------
    graph:
        Input graph.
    labels:
        Community id per node; ids need not be contiguous.

    Returns
    -------
    (aggregate, mapping):
        The aggregated graph on ``k`` super-nodes and the dense mapping
        array (``mapping[node] -> super_node``) with super-nodes numbered
        by ascending original label.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != (graph.n_nodes,):
        raise PartitionError(
            f"labels must have shape ({graph.n_nodes},), got {labels.shape}"
        )
    unique = np.unique(labels)
    remap = {int(label): i for i, label in enumerate(unique)}
    mapping = np.asarray([remap[int(c)] for c in labels], dtype=np.int64)

    edge_u, edge_v, edge_w = graph.edge_arrays()
    merged: dict[tuple[int, int], float] = {}
    for u, v, w in zip(edge_u.tolist(), edge_v.tolist(), edge_w.tolist()):
        cu, cv = int(mapping[u]), int(mapping[v])
        key = (cu, cv) if cu <= cv else (cv, cu)
        merged[key] = merged.get(key, 0.0) + float(w)
    aggregate = Graph(
        len(unique), [(u, v, w) for (u, v), w in merged.items()]
    )
    return aggregate, mapping
