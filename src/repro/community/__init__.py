"""Community detection core: the paper's primary contribution.

Direct QUBO-based detection for small networks (§III-B.1), the multilevel
coarsen/solve/refine pipeline for large networks (§III-B.2, Algorithm 2),
classical baselines (Louvain, label propagation, spectral), and partition
quality metrics.
"""

from repro.community.modularity import (
    community_degree_sums,
    modularity,
    modularity_gain_matrix,
)
from repro.community.partition import Partition
from repro.community.result import CommunityResult
from repro.community.aggregate import aggregate_graph
from repro.community.refinement import refine_labels
from repro.community.direct import DirectQuboDetector
from repro.community.multilevel import MultilevelConfig, MultilevelDetector
from repro.community.louvain import louvain
from repro.community.label_propagation import label_propagation
from repro.community.spectral import spectral_communities
from repro.community.metrics import (
    adjusted_rand_index,
    conductance,
    coverage,
    normalized_mutual_information,
    partition_summary,
)
from repro.community.detector import QhdCommunityDetector
from repro.community.girvan_newman import girvan_newman
from repro.community.adaptive import AdaptivePenaltyDetector
from repro.community.kernighan_lin import kl_swap_refine, swap_gain
from repro.community.consensus import (
    co_association_matrix,
    consensus_detect,
    consensus_labels,
)

__all__ = [
    "modularity",
    "community_degree_sums",
    "modularity_gain_matrix",
    "Partition",
    "CommunityResult",
    "aggregate_graph",
    "refine_labels",
    "DirectQuboDetector",
    "MultilevelConfig",
    "MultilevelDetector",
    "louvain",
    "label_propagation",
    "spectral_communities",
    "adjusted_rand_index",
    "normalized_mutual_information",
    "conductance",
    "coverage",
    "partition_summary",
    "QhdCommunityDetector",
    "girvan_newman",
    "AdaptivePenaltyDetector",
    "kl_swap_refine",
    "swap_gain",
    "co_association_matrix",
    "consensus_labels",
    "consensus_detect",
]
