"""Multilevel community detection (paper Algorithm 2, §III-B.2, §IV-B).

Three phases:

1. **Coarsening** — heavy-edge matching with the Eq. 6 hybrid score until
   at most ``threshold`` super-nodes remain.
2. **Initial partition** — the direct Algorithm 1 QUBO solved on the
   coarsest graph by any QUBO solver (QHD by default).
3. **Uncoarsening** — project labels level by level, applying
   modularity-gain local refinement at every level (REFINE).

Because coarsening preserves weighted degrees and total weight, the
modularity measured on any level equals the modularity of the projected
partition on the original graph, so refinement can only improve the final
score monotonically down the ladder.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.config import Configurable
from repro.api.registry import DETECTORS, SolverConfigurable
from repro.community.direct import DirectQuboDetector
from repro.community.modularity import modularity
from repro.community.refinement import check_partition, refine_labels
from repro.community.result import CommunityResult
from repro.graphs.coarsen import coarsen_to_threshold
from repro.graphs.graph import Graph
from repro.solvers.base import QuboSolver
from repro.utils.timer import Stopwatch
from repro.utils.validation import check_integer, check_positive


@dataclass(frozen=True)
class MultilevelConfig(Configurable):
    """Tuning knobs of Algorithm 2.

    Attributes
    ----------
    threshold:
        Coarsening stops once the graph has at most this many nodes
        (``theta`` in Algorithm 2); it bounds the direct QUBO size at
        ``threshold * k`` variables.
    alpha, beta:
        Eq. 6 mixing weights (neighbourhood overlap vs edge weight).
    refine_passes:
        Local-moving passes applied at each uncoarsening level.
    max_levels:
        Safety cap on coarsening depth.
    """

    threshold: int = 150
    alpha: float = 0.5
    beta: float = 0.5
    refine_passes: int = 10
    max_levels: int = 50
    degree_limit_factor: float | None = 1.0
    refine_seed: int | None = None

    def __post_init__(self) -> None:
        check_integer(self.threshold, "threshold", minimum=2)
        check_positive(self.alpha, "alpha", allow_zero=True)
        check_positive(self.beta, "beta", allow_zero=True)
        check_integer(self.refine_passes, "refine_passes", minimum=0)
        check_integer(self.max_levels, "max_levels", minimum=1)
        if self.degree_limit_factor is not None:
            check_positive(self.degree_limit_factor, "degree_limit_factor")


@DETECTORS.register("multilevel")
class MultilevelDetector(SolverConfigurable):
    """Algorithm 2: coarsen, solve the base QUBO, project and refine.

    Parameters
    ----------
    solver:
        QUBO solver for the coarsest-level solve (QHD by default).
    config:
        Multilevel tuning knobs.
    lambda_assignment, lambda_balance, modularity_weight, cut_weight:
        Forwarded to the base-level :class:`DirectQuboDetector`.
    backend:
        QUBO storage backend forwarded to the base solve (``"auto"``
        default): with a large coarsening ``threshold`` the base QUBO
        switches to the sparse backend automatically, so multilevel base
        solves never materialise an O((nk)^2) dense matrix.

    Examples
    --------
    >>> from repro.graphs import planted_partition_graph
    >>> from repro.solvers import SimulatedAnnealingSolver
    >>> graph, _ = planted_partition_graph(4, 40, 0.3, 0.01, seed=1)
    >>> detector = MultilevelDetector(
    ...     SimulatedAnnealingSolver(seed=0),
    ...     config=MultilevelConfig(threshold=40),
    ... )
    >>> result = detector.detect(graph, n_communities=4)
    >>> result.modularity > 0.5
    True
    """

    #: ``solver`` resolves through the base detector; ``config`` is
    #: normalised to a MultilevelConfig.  The original arguments back
    #: the config round-trip.
    _config_aliases = {"solver": "_solver_spec", "config": "_config_spec"}

    _nested_configs = {"config": MultilevelConfig}

    def __init__(
        self,
        solver: QuboSolver | None = None,
        config: MultilevelConfig | None = None,
        lambda_assignment: float | None = None,
        lambda_balance: float | None = None,
        modularity_weight: float = 1.0,
        cut_weight: float = 0.0,
        backend: str = "auto",
    ) -> None:
        self._solver_spec = solver
        self._config_spec = config
        self.lambda_assignment = lambda_assignment
        self.lambda_balance = lambda_balance
        self.modularity_weight = modularity_weight
        self.cut_weight = cut_weight
        self.backend = backend
        self.config = config or MultilevelConfig()
        self._base_detector = DirectQuboDetector(
            solver=solver,
            lambda_assignment=lambda_assignment,
            lambda_balance=lambda_balance,
            modularity_weight=modularity_weight,
            cut_weight=cut_weight,
            refine_passes=self.config.refine_passes,
            refine_seed=self.config.refine_seed,
            backend=backend,
        )

    @property
    def solver(self) -> QuboSolver:
        """The base-level QUBO solver."""
        return self._base_detector.solver

    def detect(
        self,
        graph: Graph,
        n_communities: int,
        initial_partition: np.ndarray | None = None,
    ) -> CommunityResult:
        """Detect at most ``n_communities`` communities in ``graph``.

        ``initial_partition`` (optional) warm-starts the finest level:
        the previous partition is refined by local moving on ``graph``
        and competes by modularity with the multilevel result (on the
        degenerate small-graph path it is forwarded to the direct
        detector).  Without it, seeded cold runs are unchanged.
        """
        check_integer(n_communities, "n_communities", minimum=1)
        cfg = self.config
        watch = Stopwatch().start()

        # METIS-style super-node weight cap: no super-node may absorb more
        # than ``degree_limit_factor`` times one balanced community's share
        # of the total degree, so coarsening stops short of collapsing the
        # communities the base solver is meant to discover.
        max_degree = None
        if cfg.degree_limit_factor is not None:
            max_degree = (
                cfg.degree_limit_factor
                * 2.0
                * graph.total_weight
                / max(1, n_communities)
            )
        hierarchy = coarsen_to_threshold(
            graph,
            cfg.threshold,
            alpha=cfg.alpha,
            beta=cfg.beta,
            max_levels=cfg.max_levels,
            max_degree=max_degree,
        )
        if hierarchy is None:
            # Already small enough: Algorithm 2 degenerates to a direct solve.
            base = self._base_detector.detect(
                graph, n_communities, initial_partition=initial_partition
            )
            watch.stop()
            return CommunityResult(
                labels=base.labels,
                modularity=base.modularity,
                method=f"multilevel[{self.solver.name}]",
                wall_time=watch.elapsed,
                solve_result=base.solve_result,
                metadata={**base.metadata, "levels": 0},
            )

        # Initial partition on the coarsest graph (SOLVEBASE).
        base = self._base_detector.detect(
            hierarchy.coarsest_graph, n_communities
        )
        labels = base.labels

        # Uncoarsening: project + refine at every level (PROJECT/REFINE).
        refinement_moves = 0
        for level in reversed(hierarchy.levels):
            labels = level.project_labels(labels)
            if cfg.refine_passes > 0:
                labels, moves = refine_labels(
                    level.fine_graph,
                    labels,
                    max_passes=cfg.refine_passes,
                    seed=cfg.refine_seed,
                )
                refinement_moves += moves
        score = modularity(graph, labels)
        metadata = {
            "levels": hierarchy.n_levels,
            "coarsest_nodes": hierarchy.coarsest_graph.n_nodes,
            "base_modularity": base.modularity,
            "refinement_moves": refinement_moves,
            "threshold": cfg.threshold,
        }
        if initial_partition is not None:
            # Warm start at the finest level: refine the previous
            # partition on the current graph and keep the better
            # candidate (ties go to the cold multilevel result).
            warm = check_partition(graph, initial_partition)
            warm, _ = refine_labels(
                graph,
                warm,
                max_passes=max(1, cfg.refine_passes),
                seed=cfg.refine_seed,
            )
            warm_score = modularity(graph, warm)
            metadata["warm_start"] = True
            metadata["warm_selected"] = bool(warm_score > score)
            if warm_score > score:
                labels, score = warm, warm_score
        watch.stop()

        return CommunityResult(
            labels=labels,
            modularity=score,
            method=f"multilevel[{self.solver.name}]",
            wall_time=watch.elapsed,
            solve_result=base.solve_result,
            metadata=metadata,
        )
