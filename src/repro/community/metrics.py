"""Partition quality metrics beyond modularity.

NMI and ARI compare detected communities against planted ground truth on
synthetic instances; conductance and coverage characterise cut quality.
All are implemented natively (no sklearn dependency).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.community.modularity import modularity
from repro.exceptions import PartitionError
from repro.graphs.graph import Graph


def _contingency(
    labels_a: np.ndarray, labels_b: np.ndarray
) -> np.ndarray:
    a = np.asarray(labels_a, dtype=np.int64)
    b = np.asarray(labels_b, dtype=np.int64)
    if a.shape != b.shape or a.ndim != 1:
        raise PartitionError(
            f"label arrays must be 1-D with equal length, got "
            f"{a.shape} and {b.shape}"
        )
    _, a_idx = np.unique(a, return_inverse=True)
    _, b_idx = np.unique(b, return_inverse=True)
    table = np.zeros((a_idx.max() + 1, b_idx.max() + 1), dtype=np.int64)
    np.add.at(table, (a_idx, b_idx), 1)
    return table


def normalized_mutual_information(
    labels_a: np.ndarray, labels_b: np.ndarray
) -> float:
    """NMI with arithmetic-mean normalisation, in [0, 1].

    Examples
    --------
    >>> normalized_mutual_information([0, 0, 1, 1], [1, 1, 0, 0])
    1.0
    """
    table = _contingency(labels_a, labels_b)
    n = table.sum()
    if n == 0:
        return 1.0
    joint = table / n
    pa = joint.sum(axis=1)
    pb = joint.sum(axis=0)
    nz = joint > 0
    mi = float(
        np.sum(
            joint[nz]
            * np.log(joint[nz] / np.outer(pa, pb)[nz])
        )
    )
    ha = -float(np.sum(pa[pa > 0] * np.log(pa[pa > 0])))
    hb = -float(np.sum(pb[pb > 0] * np.log(pb[pb > 0])))
    if ha == 0.0 and hb == 0.0:
        return 1.0  # both partitions are single communities
    denom = 0.5 * (ha + hb)
    if denom == 0.0:
        return 0.0
    return float(np.clip(mi / denom, 0.0, 1.0))


def adjusted_rand_index(
    labels_a: np.ndarray, labels_b: np.ndarray
) -> float:
    """Adjusted Rand index (chance-corrected pair agreement).

    Examples
    --------
    >>> adjusted_rand_index([0, 0, 1, 1], [0, 0, 1, 1])
    1.0
    """
    table = _contingency(labels_a, labels_b)
    n = table.sum()
    if n < 2:
        return 1.0

    def comb2(x: np.ndarray) -> np.ndarray:
        return x * (x - 1) / 2.0

    sum_cells = float(comb2(table.astype(np.float64)).sum())
    sum_rows = float(comb2(table.sum(axis=1).astype(np.float64)).sum())
    sum_cols = float(comb2(table.sum(axis=0).astype(np.float64)).sum())
    total = float(comb2(np.float64(n)))
    expected = sum_rows * sum_cols / total
    maximum = 0.5 * (sum_rows + sum_cols)
    if maximum == expected:
        return 1.0
    return (sum_cells - expected) / (maximum - expected)


def conductance(graph: Graph, labels: np.ndarray) -> dict[int, float]:
    """Conductance of each community: cut / min(vol, total - vol).

    Lower is better; an isolated clique scores 0.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != (graph.n_nodes,):
        raise PartitionError(
            f"labels must have shape ({graph.n_nodes},), got {labels.shape}"
        )
    two_m = 2.0 * graph.total_weight
    communities = np.unique(labels)
    cut = {int(c): 0.0 for c in communities}
    volume = {int(c): 0.0 for c in communities}
    for c in communities:
        members = labels == c
        volume[int(c)] = float(np.sum(np.asarray(graph.degrees)[members]))
    edge_u, edge_v, edge_w = graph.edge_arrays()
    for u, v, w in zip(edge_u.tolist(), edge_v.tolist(), edge_w.tolist()):
        if labels[u] != labels[v]:
            cut[int(labels[u])] += float(w)
            cut[int(labels[v])] += float(w)
    result = {}
    for c in communities:
        c = int(c)
        denom = min(volume[c], two_m - volume[c])
        result[c] = cut[c] / denom if denom > 0 else 0.0
    return result


def coverage(graph: Graph, labels: np.ndarray) -> float:
    """Fraction of edge weight that is intra-community, in [0, 1]."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != (graph.n_nodes,):
        raise PartitionError(
            f"labels must have shape ({graph.n_nodes},), got {labels.shape}"
        )
    if graph.total_weight == 0:
        return 1.0
    edge_u, edge_v, edge_w = graph.edge_arrays()
    internal = sum(
        w
        for u, v, w in zip(
            edge_u.tolist(), edge_v.tolist(), edge_w.tolist()
        )
        if labels[u] == labels[v]
    )
    # Clip: summation order can push the ratio epsilon past 1.0.
    return float(min(1.0, max(0.0, internal / graph.total_weight)))


@dataclass(frozen=True)
class PartitionSummary:
    """One-line quality summary of a partition."""

    n_communities: int
    modularity: float
    coverage: float
    max_conductance: float
    min_size: int
    max_size: int

    def as_row(self) -> dict[str, float]:
        """Flatten to a dict for tabular reporting."""
        return {
            "communities": self.n_communities,
            "modularity": self.modularity,
            "coverage": self.coverage,
            "max_conductance": self.max_conductance,
            "min_size": self.min_size,
            "max_size": self.max_size,
        }


def partition_summary(graph: Graph, labels: np.ndarray) -> PartitionSummary:
    """Compute a :class:`PartitionSummary` for ``labels`` on ``graph``."""
    labels = np.asarray(labels, dtype=np.int64)
    values, counts = np.unique(labels, return_counts=True)
    cond = conductance(graph, labels)
    return PartitionSummary(
        n_communities=len(values),
        modularity=modularity(graph, labels),
        coverage=coverage(graph, labels),
        max_conductance=max(cond.values()) if cond else 0.0,
        min_size=int(counts.min()) if len(counts) else 0,
        max_size=int(counts.max()) if len(counts) else 0,
    )
