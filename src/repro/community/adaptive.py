"""Adaptive penalty tuning for the Algorithm 1 QUBO.

The paper handles constraints "through penalty-based methods" (§IV-A); in
practice the right penalty weight is instance-dependent: too small and
the solver returns invalid assignments, too large and the modularity
signal is drowned out.  :class:`AdaptivePenaltyDetector` automates the
trade-off with a standard escalation loop — solve, count raw constraint
violations, multiply the assignment penalty and retry until the raw
solution is feasible (or a round budget runs out), keeping the best
decoded partition seen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.api.registry import DETECTORS, SolverConfigurable
from repro.community.direct import DirectQuboDetector
from repro.community.result import CommunityResult
from repro.graphs.graph import Graph
from repro.qubo.builders import default_penalties
from repro.solvers.base import QuboSolver
from repro.utils.timer import Stopwatch
from repro.utils.validation import check_integer, check_positive


@dataclass(frozen=True)
class PenaltyRound:
    """Diagnostics of one escalation round."""

    lambda_assignment: float
    lambda_balance: float
    unassigned: int
    multi_assigned: int
    modularity: float


@DETECTORS.register("adaptive")
class AdaptivePenaltyDetector(SolverConfigurable):
    """Direct QUBO detection with automatic penalty escalation.

    Parameters
    ----------
    solver:
        Any QUBO solver (QHD by default at the package level).
    escalation:
        Multiplier applied to the assignment penalty after an infeasible
        round.
    max_rounds:
        Maximum solve rounds.
    initial_scale:
        Multiplier on the auto-tuned starting penalties; values below 1
        deliberately start soft so the modularity term dominates when it
        can.

    Examples
    --------
    >>> from repro.graphs import ring_of_cliques
    >>> from repro.solvers import SimulatedAnnealingSolver
    >>> graph, _ = ring_of_cliques(3, 5)
    >>> detector = AdaptivePenaltyDetector(
    ...     SimulatedAnnealingSolver(n_sweeps=100, n_restarts=2, seed=0))
    >>> result = detector.detect(graph, n_communities=3)
    >>> result.metadata["rounds"] >= 1
    True
    """

    def __init__(
        self,
        solver: QuboSolver | None = None,
        escalation: float = 4.0,
        max_rounds: int = 4,
        initial_scale: float = 0.25,
        refine_passes: int = 5,
    ) -> None:
        self.solver = solver
        self.escalation = check_positive(escalation, "escalation")
        if self.escalation <= 1.0:
            raise ValueError(
                f"escalation must be > 1, got {self.escalation}"
            )
        self.max_rounds = check_integer(max_rounds, "max_rounds", minimum=1)
        self.initial_scale = check_positive(initial_scale, "initial_scale")
        self.refine_passes = check_integer(
            refine_passes, "refine_passes", minimum=0
        )

    def detect(
        self,
        graph: Graph,
        n_communities: int,
        initial_partition: np.ndarray | None = None,
    ) -> CommunityResult:
        """Detect communities, escalating penalties until feasible.

        ``initial_partition`` (optional) warm-starts every escalation
        round's direct solve (see :meth:`DirectQuboDetector.detect`).
        """
        watch = Stopwatch().start()
        auto_a, auto_s = default_penalties(graph, n_communities)
        lambda_a = self.initial_scale * auto_a
        lambda_s = self.initial_scale * auto_s

        rounds: list[PenaltyRound] = []
        best: CommunityResult | None = None
        for _ in range(self.max_rounds):
            detector = DirectQuboDetector(
                solver=self.solver,
                lambda_assignment=lambda_a,
                lambda_balance=lambda_s,
                refine_passes=self.refine_passes,
            )
            result = detector.detect(
                graph, n_communities, initial_partition=initial_partition
            )
            unassigned = int(result.metadata["unassigned_nodes"])
            multi = int(result.metadata["multi_assigned_nodes"])
            rounds.append(
                PenaltyRound(
                    lambda_assignment=lambda_a,
                    lambda_balance=lambda_s,
                    unassigned=unassigned,
                    multi_assigned=multi,
                    modularity=result.modularity,
                )
            )
            if best is None or result.modularity > best.modularity:
                best = result
            if unassigned == 0 and multi == 0:
                break
            lambda_a *= self.escalation
            lambda_s *= self.escalation
        watch.stop()

        assert best is not None
        metadata: dict[str, Any] = {
            **best.metadata,
            "rounds": len(rounds),
            "penalty_history": [
                (r.lambda_assignment, r.unassigned, r.multi_assigned)
                for r in rounds
            ],
        }
        return CommunityResult(
            labels=best.labels,
            modularity=best.modularity,
            method=f"adaptive-{best.method}",
            wall_time=watch.elapsed,
            solve_result=best.solve_result,
            metadata=metadata,
        )
