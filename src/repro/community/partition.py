"""Partition container: validated community labels with common queries."""

from __future__ import annotations

import numpy as np

from repro.exceptions import PartitionError


class Partition:
    """An immutable node-to-community assignment.

    Parameters
    ----------
    labels:
        Non-negative integer community id per node.  Labels need not be
        contiguous; :meth:`compacted` renumbers them ``0..k-1`` by first
        appearance.

    Examples
    --------
    >>> p = Partition([0, 0, 2, 2, 2])
    >>> p.n_communities
    2
    >>> p.compacted().labels.tolist()
    [0, 0, 1, 1, 1]
    """

    __slots__ = ("_labels",)

    def __init__(self, labels) -> None:
        arr = np.asarray(labels, dtype=np.int64)
        if arr.ndim != 1:
            raise PartitionError(
                f"labels must be 1-D, got shape {arr.shape}"
            )
        if arr.size and arr.min() < 0:
            raise PartitionError("labels must be non-negative")
        arr = arr.copy()
        arr.flags.writeable = False
        self._labels = arr

    @property
    def labels(self) -> np.ndarray:
        """The raw label array (read-only)."""
        return self._labels

    @property
    def n_nodes(self) -> int:
        """Number of nodes covered."""
        return len(self._labels)

    @property
    def n_communities(self) -> int:
        """Number of distinct (non-empty) communities."""
        return len(np.unique(self._labels)) if self._labels.size else 0

    def sizes(self) -> dict[int, int]:
        """Community id -> member count."""
        values, counts = np.unique(self._labels, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    def members(self, community: int) -> np.ndarray:
        """Node ids belonging to ``community``."""
        return np.flatnonzero(self._labels == community)

    def communities(self) -> list[np.ndarray]:
        """All communities as arrays of node ids, ordered by label."""
        return [
            self.members(int(c)) for c in np.unique(self._labels)
        ]

    def compacted(self) -> "Partition":
        """Relabel communities to ``0..k-1`` by first appearance."""
        mapping: dict[int, int] = {}
        new = np.empty_like(self._labels)
        for i, label in enumerate(self._labels.tolist()):
            if label not in mapping:
                mapping[label] = len(mapping)
            new[i] = mapping[label]
        return Partition(new)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return np.array_equal(self._labels, other._labels)

    def __hash__(self) -> int:  # pragma: no cover - identity is enough
        return hash(self._labels.tobytes())

    def __repr__(self) -> str:
        return (
            f"Partition(n_nodes={self.n_nodes}, "
            f"n_communities={self.n_communities})"
        )
