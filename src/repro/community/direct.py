"""Direct QUBO community detection for small/medium networks (§III-B.1).

Pipeline: build the Algorithm 1 QUBO -> minimise it with any
:class:`repro.solvers.QuboSolver` (QHD by default at the package level) ->
decode/repair the bitstring into labels -> optional modularity-gain local
refinement (the classical polish that both our QHD and the paper's
pipeline apply).
"""

from __future__ import annotations


import numpy as np

from repro.api.registry import DETECTORS, SolverConfigurable
from repro.community.modularity import modularity
from repro.community.refinement import check_partition, refine_labels
from repro.community.result import CommunityResult
from repro.exceptions import SolverError
from repro.graphs.graph import Graph
from repro.qubo.builders import build_community_qubo
from repro.qubo.decode import assignment_violations, decode_assignment
from repro.solvers.base import QuboSolver
from repro.utils.timer import Stopwatch
from repro.utils.validation import check_integer


@DETECTORS.register("direct")
class DirectQuboDetector(SolverConfigurable):
    """Community detection by one direct QUBO solve.

    Parameters
    ----------
    solver:
        Any QUBO solver; defaults to :class:`repro.qhd.QhdSolver` with its
        default settings.
    lambda_assignment, lambda_balance:
        Penalty weights of Eq. 3 / Eq. 4 (``None`` = auto, see
        :func:`repro.qubo.default_penalties`).
    modularity_weight, cut_weight:
        Objective weights ``w1`` and ``w3`` of Algorithm 1.
    refine_passes:
        Local-moving passes applied to the decoded labels (0 disables).
    refine_seed:
        ``None`` = deterministic node order; an int randomises the
        local-moving order (used when measuring run-to-run variance).
    backend:
        QUBO storage backend: ``"auto"`` (default) applies
        :func:`repro.qubo.select_backend`'s size/density rule — dense up
        to ``n * k <= 2048`` variables, sparse (CSR + low-rank factors,
        never O((nk)^2) memory) beyond; ``"dense"`` / ``"sparse"``
        force a backend.

    Examples
    --------
    >>> from repro.graphs import ring_of_cliques
    >>> from repro.solvers import SimulatedAnnealingSolver
    >>> graph, truth = ring_of_cliques(3, 5)
    >>> detector = DirectQuboDetector(SimulatedAnnealingSolver(seed=0))
    >>> result = detector.detect(graph, n_communities=3)
    >>> result.modularity > 0.5
    True
    """

    #: The resolved solver lands on ``self.solver``; the original
    #: argument backs the config round-trip (``None`` stays ``None``).
    _config_aliases = {"solver": "_solver_spec"}

    def __init__(
        self,
        solver: QuboSolver | None = None,
        lambda_assignment: float | None = None,
        lambda_balance: float | None = None,
        modularity_weight: float = 1.0,
        cut_weight: float = 0.0,
        refine_passes: int = 5,
        refine_seed=None,
        backend: str = "auto",
    ) -> None:
        self._solver_spec = solver
        if solver is None:
            from repro.qhd.solver import QhdSolver

            solver = QhdSolver()
        if not isinstance(solver, QuboSolver):
            raise SolverError(
                f"solver must be a QuboSolver, got {type(solver).__name__}"
            )
        self.solver = solver
        self.lambda_assignment = lambda_assignment
        self.lambda_balance = lambda_balance
        self.modularity_weight = modularity_weight
        self.cut_weight = cut_weight
        self.refine_passes = check_integer(
            refine_passes, "refine_passes", minimum=0
        )
        self.refine_seed = refine_seed
        self.backend = backend

    def detect(
        self,
        graph: Graph,
        n_communities: int,
        initial_partition: np.ndarray | None = None,
    ) -> CommunityResult:
        """Detect at most ``n_communities`` communities in ``graph``.

        ``initial_partition`` (optional) warm-starts the classical
        polish: the previous partition is refined by local moving on
        the current graph and the better of the two candidates — QUBO
        solve vs refined warm start — wins by modularity.  Without it
        the pipeline is exactly the historical cold path, so seeded
        cold runs are unchanged.
        """
        check_integer(n_communities, "n_communities", minimum=1)
        watch = Stopwatch().start()

        community_qubo = build_community_qubo(
            graph,
            n_communities,
            lambda_assignment=self.lambda_assignment,
            lambda_balance=self.lambda_balance,
            modularity_weight=self.modularity_weight,
            cut_weight=self.cut_weight,
            backend=self.backend,
        )
        solve_result = self.solver.solve(community_qubo.model)
        violations = assignment_violations(
            solve_result.x, community_qubo.variable_map
        )
        labels = decode_assignment(
            solve_result.x, community_qubo.variable_map, graph=graph
        )
        if self.refine_passes > 0:
            labels, _ = refine_labels(
                graph,
                labels,
                max_passes=self.refine_passes,
                seed=self.refine_seed,
            )
        score = modularity(graph, labels)
        metadata = {
            "n_variables": community_qubo.model.n_variables,
            "unassigned_nodes": violations[0],
            "multi_assigned_nodes": violations[1],
            "lambda_assignment": community_qubo.lambda_assignment,
            "lambda_balance": community_qubo.lambda_balance,
            "refine_passes": self.refine_passes,
            "qubo_backend": community_qubo.backend,
        }
        if initial_partition is not None:
            # Warm start: local-move the previous partition on the new
            # graph (at least one pass even when cold refinement is
            # disabled) and keep the better candidate.  Strictly-better
            # so ties resolve to the cold path deterministically.
            warm = check_partition(graph, initial_partition)
            warm, _ = refine_labels(
                graph,
                warm,
                max_passes=max(1, self.refine_passes),
                seed=self.refine_seed,
            )
            warm_score = modularity(graph, warm)
            metadata["warm_start"] = True
            metadata["warm_selected"] = bool(warm_score > score)
            if warm_score > score:
                labels, score = warm, warm_score
        watch.stop()

        return CommunityResult(
            labels=labels,
            modularity=score,
            method=f"direct-qubo[{self.solver.name}]",
            wall_time=watch.elapsed,
            solve_result=solve_result,
            metadata=metadata,
        )
