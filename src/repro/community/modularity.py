"""Modularity (paper Eq. 1) and its building blocks.

    Q = (1/2m) sum_ij (A_ij - d_i d_j / 2m) delta(c_i, c_j)

Self-loop convention: a self-loop of weight ``w`` contributes ``w`` to
``A_ii`` (counted once in the double sum) and ``2w`` to the degree — the
convention under which coarsening a graph preserves the modularity of
projected partitions exactly.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import PartitionError
from repro.graphs.graph import Graph


def _check_labels(graph: Graph, labels: np.ndarray) -> np.ndarray:
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != (graph.n_nodes,):
        raise PartitionError(
            f"labels must have shape ({graph.n_nodes},), got {labels.shape}"
        )
    if graph.n_nodes and labels.min() < 0:
        raise PartitionError("labels must be non-negative")
    return labels


def modularity(graph: Graph, labels: np.ndarray) -> float:
    """Modularity of a partition (Eq. 1); O(|E| + n).

    Examples
    --------
    >>> from repro.graphs import ring_of_cliques
    >>> graph, truth = ring_of_cliques(4, 5)
    >>> modularity(graph, truth) > 0.6
    True
    """
    labels = _check_labels(graph, labels)
    two_m = 2.0 * graph.total_weight
    if two_m == 0:
        return 0.0
    edge_u, edge_v, edge_w = graph.edge_arrays()
    internal = 0.0
    for u, v, w in zip(edge_u.tolist(), edge_v.tolist(), edge_w.tolist()):
        if labels[u] == labels[v]:
            # Every edge contributes 2w to the double sum: off-diagonal
            # edges appear at (i, j) and (j, i); a self-loop has A_ii = 2w
            # (Newman's multigraph convention, which also makes modularity
            # invariant under super-node aggregation).
            internal += 2.0 * w
    degree_sums = community_degree_sums(graph, labels)
    null = float(np.sum(degree_sums**2)) / two_m
    return (internal - null) / two_m


def community_degree_sums(graph: Graph, labels: np.ndarray) -> np.ndarray:
    """Total weighted degree per community, indexed by label value."""
    labels = _check_labels(graph, labels)
    n_comm = int(labels.max()) + 1 if len(labels) else 0
    sums = np.zeros(n_comm, dtype=np.float64)
    np.add.at(sums, labels, graph.degrees)
    return sums


def node_to_community_weights(
    graph: Graph, node: int, labels: np.ndarray, n_communities: int
) -> np.ndarray:
    """Edge weight from ``node`` into each community (self-loops excluded)."""
    weights = np.zeros(n_communities, dtype=np.float64)
    neighbors = graph.neighbors(node)
    nb_weights = graph.neighbor_weights(node)
    for nb, w in zip(neighbors.tolist(), nb_weights.tolist()):
        if nb != node:
            weights[labels[nb]] += w
    return weights


def modularity_gain_matrix(
    graph: Graph, labels: np.ndarray, n_communities: int | None = None
) -> np.ndarray:
    """Gain ``delta Q`` of moving each node to each community.

    Entry ``(i, c)`` is the modularity change of reassigning node ``i`` from
    its current community to ``c`` (zero for its current community).  Used
    by tests as the dense oracle for the incremental refinement moves.
    """
    labels = _check_labels(graph, labels)
    if n_communities is None:
        n_communities = int(labels.max()) + 1 if len(labels) else 0
    two_m = 2.0 * graph.total_weight
    gains = np.zeros((graph.n_nodes, n_communities), dtype=np.float64)
    if two_m == 0:
        return gains
    m = graph.total_weight
    degree_sums = np.zeros(n_communities, dtype=np.float64)
    np.add.at(degree_sums, labels, graph.degrees)

    for node in range(graph.n_nodes):
        current = int(labels[node])
        d_i = graph.degree(node)
        weights = node_to_community_weights(graph, node, labels, n_communities)
        for target in range(n_communities):
            if target == current:
                continue
            delta_internal = (weights[target] - weights[current]) / m
            delta_null = (
                d_i
                * (degree_sums[target] - (degree_sums[current] - d_i))
                / (2.0 * m * m)
            )
            gains[node, target] = delta_internal - delta_null
    return gains
