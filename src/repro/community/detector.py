"""The headline public API: QHD-based community detection.

:class:`QhdCommunityDetector` reproduces the paper's end-to-end pipeline:
direct QUBO + QHD for networks up to ``direct_threshold`` nodes
(|V| <= 1000 in the paper, §III-B.2) and the multilevel Algorithm 2
otherwise.  Any other :class:`repro.solvers.QuboSolver` can be swapped in,
which is exactly how the GUROBI-substitute comparison runs are produced.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import DETECTORS, SolverConfigurable
from repro.community.direct import DirectQuboDetector
from repro.community.multilevel import MultilevelConfig, MultilevelDetector
from repro.community.result import CommunityResult
from repro.graphs.graph import Graph
from repro.solvers.base import QuboSolver
from repro.utils.rng import SeedLike
from repro.utils.validation import check_integer


@DETECTORS.register("qhd")
class QhdCommunityDetector(SolverConfigurable):
    """End-to-end quantum-inspired community detection.

    Parameters
    ----------
    solver:
        QUBO solver for the (base-level) solve.  ``None`` builds a
        :class:`repro.qhd.QhdSolver` from ``qhd_*`` parameters below.
    direct_threshold:
        Networks with at most this many nodes are solved by one direct
        QUBO; larger networks go through the multilevel pipeline (the
        paper draws this line at 1000 nodes).
    multilevel_config:
        Tuning of the multilevel phase.
    qhd_samples, qhd_steps, qhd_grid_points:
        Convenience QHD settings used when ``solver`` is ``None``.
    seed:
        Seed of the default QHD solver.
    backend:
        QUBO storage backend for every solve (``"auto"``, ``"dense"``
        or ``"sparse"``).  ``"auto"`` follows
        :func:`repro.qubo.select_backend`: dense while
        ``n * k <= DENSE_VARIABLE_LIMIT`` (2048 variables), sparse
        beyond — the sparse backend stores adjacency couplings in CSR
        and the null-model/penalty terms as low-rank factors, so
        memory stays O(|E| k + n k) instead of O((n k)^2).  Forcing
        ``"dense"`` reproduces the all-dense pipeline; forcing
        ``"sparse"`` exercises the paper's sparsity-computation regime
        at any size.

    Examples
    --------
    >>> from repro.graphs import ring_of_cliques
    >>> graph, truth = ring_of_cliques(3, 6)
    >>> detector = QhdCommunityDetector(qhd_samples=8, qhd_steps=80, seed=0)
    >>> result = detector.detect(graph, n_communities=3)
    >>> result.n_communities
    3
    """

    #: ``solver`` and ``multilevel_config`` are normalised on
    #: assignment; the original constructor arguments back the config
    #: round-trip (so a default-built detector serialises to
    #: ``solver: None`` instead of a live QhdSolver object).
    _config_aliases = {
        "solver": "_solver_spec",
        "multilevel_config": "_multilevel_spec",
    }
    _nested_configs = {"multilevel_config": MultilevelConfig}

    #: Config fields that shape the built-in default solver.  The CLI
    #: consults this before replacing the default with an explicit
    #: ``"qhd"`` spec (e.g. to thread ``--time-limit`` through): when
    #: any is set, the default solver is customised and must not be
    #: swapped out.
    default_solver_fields = ("qhd_samples", "qhd_steps", "qhd_grid_points")

    def __init__(
        self,
        solver: QuboSolver | None = None,
        direct_threshold: int = 1000,
        multilevel_config: MultilevelConfig | None = None,
        lambda_assignment: float | None = None,
        lambda_balance: float | None = None,
        refine_passes: int = 5,
        qhd_samples: int = 32,
        qhd_steps: int = 200,
        qhd_grid_points: int = 32,
        seed: SeedLike = None,
        backend: str = "auto",
    ) -> None:
        self.direct_threshold = check_integer(
            direct_threshold, "direct_threshold", minimum=1
        )
        self._solver_spec = solver
        self._multilevel_spec = multilevel_config
        self.lambda_assignment = lambda_assignment
        self.lambda_balance = lambda_balance
        self.refine_passes = refine_passes
        self.qhd_samples = qhd_samples
        self.qhd_steps = qhd_steps
        self.qhd_grid_points = qhd_grid_points
        self._seed = seed
        self.backend = backend
        if solver is None:
            from repro.qhd.solver import QhdSolver

            solver = QhdSolver(
                n_samples=qhd_samples,
                n_steps=qhd_steps,
                grid_points=qhd_grid_points,
                seed=seed,
            )
        self.solver = solver
        config = multilevel_config or MultilevelConfig(
            refine_passes=max(1, refine_passes)
        )
        self._direct = DirectQuboDetector(
            solver=solver,
            lambda_assignment=lambda_assignment,
            lambda_balance=lambda_balance,
            refine_passes=refine_passes,
            backend=backend,
        )
        self._multilevel = MultilevelDetector(
            solver=solver,
            config=config,
            lambda_assignment=lambda_assignment,
            lambda_balance=lambda_balance,
            backend=backend,
        )

    def detect(
        self,
        graph: Graph,
        n_communities: int,
        initial_partition: np.ndarray | None = None,
    ) -> CommunityResult:
        """Detect at most ``n_communities`` communities in ``graph``.

        Dispatches to the direct or multilevel pipeline by graph size.
        ``initial_partition`` (optional) is forwarded as the warm start
        of whichever pipeline runs (see
        :meth:`DirectQuboDetector.detect`).
        """
        if graph.n_nodes <= self.direct_threshold:
            return self._direct.detect(
                graph, n_communities, initial_partition=initial_partition
            )
        return self._multilevel.detect(
            graph, n_communities, initial_partition=initial_partition
        )
