"""Asynchronous label propagation — the fast, crude baseline.

Each node repeatedly adopts the (weighted) plurality label among its
neighbours until labels are stable.  Near-linear time, no objective;
included to bracket the quality spectrum from below in the evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_integer


def label_propagation(
    graph: Graph,
    max_iterations: int = 100,
    seed: SeedLike = None,
) -> np.ndarray:
    """Run asynchronous LPA and return compact community labels.

    Parameters
    ----------
    graph:
        Input graph.
    max_iterations:
        Cap on full sweeps (LPA can oscillate on bipartite-ish structures).
    seed:
        Controls node visiting order and tie-breaking.

    Examples
    --------
    >>> from repro.graphs import ring_of_cliques
    >>> graph, truth = ring_of_cliques(4, 6)
    >>> labels = label_propagation(graph, seed=0)
    >>> len(set(labels.tolist())) >= 2
    True
    """
    check_integer(max_iterations, "max_iterations", minimum=1)
    rng = ensure_rng(seed)
    n = graph.n_nodes
    labels = np.arange(n, dtype=np.int64)
    if n == 0:
        return labels

    for _ in range(max_iterations):
        changed = 0
        order = rng.permutation(n)
        for node in order.tolist():
            neighbors = graph.neighbors(node)
            weights = graph.neighbor_weights(node)
            if len(neighbors) == 0:
                continue
            votes: dict[int, float] = {}
            for nb, w in zip(neighbors.tolist(), weights.tolist()):
                if nb == node:
                    continue
                c = int(labels[nb])
                votes[c] = votes.get(c, 0.0) + float(w)
            if not votes:
                continue
            top = max(votes.values())
            winners = sorted(c for c, w in votes.items() if w >= top - 1e-12)
            choice = winners[int(rng.integers(0, len(winners)))]
            if choice != labels[node]:
                labels[node] = choice
                changed += 1
        if changed == 0:
            break

    _, compact = np.unique(labels, return_inverse=True)
    return compact.astype(np.int64)
