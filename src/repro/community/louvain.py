"""Louvain modularity optimisation — the classical multilevel baseline.

Phase 1 (local moving from singleton communities) reuses
:func:`repro.community.refinement.refine_labels`; phase 2 aggregates
communities into super-nodes and repeats until modularity stops improving.
Louvain serves as a reference point for the QHD pipeline and supplies
high-quality initial partitions in a few milliseconds.
"""

from __future__ import annotations

import numpy as np

from repro.community.aggregate import aggregate_graph
from repro.community.modularity import modularity
from repro.community.refinement import refine_labels
from repro.graphs.graph import Graph
from repro.utils.validation import check_integer


def louvain(
    graph: Graph,
    max_levels: int = 20,
    max_passes: int = 10,
    min_gain: float = 1e-9,
) -> np.ndarray:
    """Run Louvain and return compact community labels.

    Parameters
    ----------
    graph:
        Input graph.
    max_levels:
        Cap on aggregation rounds.
    max_passes:
        Local-moving passes per round.
    min_gain:
        Stop when a full round improves modularity by less than this.

    Examples
    --------
    >>> from repro.graphs import ring_of_cliques
    >>> graph, truth = ring_of_cliques(5, 6)
    >>> labels = louvain(graph)
    >>> len(set(labels.tolist()))
    5
    """
    check_integer(max_levels, "max_levels", minimum=1)
    if graph.n_nodes == 0:
        return np.zeros(0, dtype=np.int64)

    # Composite mapping from original nodes to current-level super-nodes.
    node_to_super = np.arange(graph.n_nodes, dtype=np.int64)
    current = graph
    best_q = modularity(graph, node_to_super)

    for _ in range(max_levels):
        singletons = np.arange(current.n_nodes, dtype=np.int64)
        moved_labels, n_moves = refine_labels(
            current, singletons, max_passes=max_passes
        )
        if n_moves == 0:
            break
        aggregated, mapping = aggregate_graph(current, moved_labels)
        node_to_super = mapping[node_to_super]
        current = aggregated
        q = modularity(graph, node_to_super)
        if q < best_q + min_gain:
            break
        best_q = q
        if current.n_nodes <= 1:
            break

    # Compact final labels.
    _, compact = np.unique(node_to_super, return_inverse=True)
    return compact.astype(np.int64)
