"""Result container shared by all community-detection entry points."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.solvers.base import SolveResult
from repro.utils.serialization import to_jsonable


@dataclass(frozen=True)
class CommunityResult:
    """Outcome of one community-detection run.

    Attributes
    ----------
    labels:
        Community id per node (compact, ``0..k-1``).
    modularity:
        Modularity (Eq. 1) of ``labels`` on the input graph.
    method:
        Human-readable pipeline identifier, e.g. ``"direct-qubo[qhd]"`` or
        ``"multilevel[branch-and-bound]"``.
    wall_time:
        End-to-end seconds, including QUBO construction and refinement.
    solve_result:
        The underlying QUBO solver result when the pipeline used one
        (``None`` for purely classical baselines).
    metadata:
        Pipeline-specific extras (levels, refinement passes, ...).
    """

    labels: np.ndarray
    modularity: float
    method: str
    wall_time: float
    solve_result: SolveResult | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def n_communities(self) -> int:
        """Number of non-empty communities in the result."""
        return len(np.unique(self.labels)) if len(self.labels) else 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict form (labels -> list, nested solve result).

        ``n_communities`` is included for consumers but derived again on
        :meth:`from_dict`, which ignores it.
        """
        return {
            "labels": np.asarray(self.labels).tolist(),
            "modularity": float(self.modularity),
            "method": self.method,
            "wall_time": float(self.wall_time),
            "n_communities": self.n_communities,
            "solve_result": (
                None
                if self.solve_result is None
                else self.solve_result.to_dict()
            ),
            "metadata": to_jsonable(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CommunityResult":
        """Rebuild a result from :meth:`to_dict` output."""
        solve_result = data.get("solve_result")
        return cls(
            labels=np.asarray(data["labels"], dtype=np.int64),
            modularity=float(data["modularity"]),
            method=data["method"],
            wall_time=float(data["wall_time"]),
            solve_result=(
                None
                if solve_result is None
                else SolveResult.from_dict(solve_result)
            ),
            metadata=dict(data.get("metadata", {})),
        )

    def __repr__(self) -> str:
        return (
            f"CommunityResult(method={self.method!r}, "
            f"modularity={self.modularity:.4f}, "
            f"n_communities={self.n_communities}, "
            f"wall_time={self.wall_time:.3f}s)"
        )
