"""Modularity-gain local-moving refinement (REFINE in Algorithm 2).

Nodes are repeatedly reassigned to the neighbouring community with the
highest positive modularity gain until a pass makes no move or the pass
budget is exhausted (paper §III-B.2, Uncoarsening and Refinement step 2).
Gains are maintained incrementally from community degree sums, so a full
pass costs O(|E|); the per-node inner loop (neighbour-community weight
accumulation and gain computation) is vectorized — one ``np.unique`` +
``np.bincount`` segment sum per node instead of a Python dict.

The same routine doubles as Louvain's phase 1 when started from singleton
communities (see :mod:`repro.community.louvain`).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import PartitionError
from repro.graphs.graph import Graph
from repro.utils.validation import check_integer


def check_partition(graph: Graph, labels: np.ndarray) -> np.ndarray:
    """Validate a caller-supplied partition (warm starts, projections).

    Returns the labels as a fresh ``int64`` array of shape
    ``(n_nodes,)``; raises :class:`repro.exceptions.PartitionError` on
    wrong shape, non-integer values or negative labels.
    """
    arr = np.asarray(labels)
    if arr.shape != (graph.n_nodes,):
        raise PartitionError(
            f"partition must have shape ({graph.n_nodes},), "
            f"got {arr.shape}"
        )
    if not np.issubdtype(arr.dtype, np.integer):
        if arr.size and not np.all(np.equal(np.mod(arr, 1), 0)):
            raise PartitionError(
                "partition labels must be integers, got dtype "
                f"{arr.dtype}"
            )
    out = arr.astype(np.int64)
    if out.size and int(out.min()) < 0:
        raise PartitionError("partition labels must be non-negative")
    return out


def refine_labels(
    graph: Graph,
    labels: np.ndarray,
    max_passes: int = 10,
    tolerance: float = 1e-12,
    seed=None,
) -> tuple[np.ndarray, int]:
    """Greedy local moving until (near) convergence.

    Parameters
    ----------
    graph:
        The graph being partitioned.
    labels:
        Initial community assignment (not mutated).
    max_passes:
        Maximum sweeps over all nodes.
    tolerance:
        Minimum gain for a move to be applied.
    seed:
        ``None`` visits nodes in ascending id order (fully deterministic).
        A seed randomises the visiting order per pass — the standard
        Louvain-style randomisation, used by the evaluation to measure
        run-to-run variance (the ± columns of Table II).

    Returns
    -------
    (labels, n_moves):
        The refined assignment and the total number of moves applied.

    Notes
    -----
    Moves are restricted to communities adjacent to the node (plus staying
    put), which is both the standard Louvain-style neighbourhood and what
    keeps each pass linear in the edge count.
    """
    check_integer(max_passes, "max_passes", minimum=1)
    labels = np.asarray(labels, dtype=np.int64).copy()
    if labels.shape != (graph.n_nodes,):
        raise PartitionError(
            f"labels must have shape ({graph.n_nodes},), got {labels.shape}"
        )
    m = graph.total_weight
    if m <= 0 or graph.n_nodes == 0:
        return labels, 0

    rng = None
    if seed is not None:
        from repro.utils.rng import ensure_rng

        rng = ensure_rng(seed)

    n_slots = int(labels.max()) + 1
    degree_sums = np.zeros(n_slots, dtype=np.float64)
    np.add.at(degree_sums, labels, graph.degrees)
    degrees = graph.degrees
    indptr, indices, weights = graph.csr()

    total_moves = 0
    for _ in range(max_passes):
        moves_this_pass = 0
        if rng is None:
            node_order = range(graph.n_nodes)
        else:
            node_order = rng.permutation(graph.n_nodes).tolist()
        for node in node_order:
            current = int(labels[node])
            d_i = float(degrees[node])
            start, end = int(indptr[node]), int(indptr[node + 1])
            neighbors = indices[start:end]
            nb_weights = weights[start:end]
            keep = neighbors != node  # drop self-loops
            neighbor_labels = labels[neighbors[keep]]
            if not len(neighbor_labels):
                continue

            # Per-neighbouring-community weight sums in one segment sum:
            # candidate communities (sorted ascending) and their total
            # edge weight to `node`.
            candidates, compact = np.unique(
                neighbor_labels, return_inverse=True
            )
            weight_to = np.bincount(compact, weights=nb_weights[keep])

            position = int(np.searchsorted(candidates, current))
            if (
                position < len(candidates)
                and candidates[position] == current
            ):
                w_current = float(weight_to[position])
            else:
                w_current = 0.0
            d_current_removed = degree_sums[current] - d_i
            gains = (weight_to - w_current) / m - d_i * (
                degree_sums[candidates] - d_current_removed
            ) / (2.0 * m * m)

            best_gain = 0.0
            best_community = current
            for slot, c in enumerate(candidates.tolist()):
                if c == current:
                    continue
                gain = float(gains[slot])
                if gain > best_gain + tolerance or (
                    gain > best_gain and c < best_community
                ):
                    best_gain = gain
                    best_community = c
            if best_community != current and best_gain > tolerance:
                labels[node] = best_community
                degree_sums[current] -= d_i
                degree_sums[best_community] += d_i
                moves_this_pass += 1
        total_moves += moves_this_pass
        if moves_this_pass == 0:
            break
    return labels, total_moves
