"""Spectral community detection on the modularity matrix.

Newman's spectral approach: embed nodes with the leading eigenvectors of
``B = A - d d^T / 2m`` and cluster the embedding with k-means.  The
modularity matrix is never materialised for large graphs — a
``LinearOperator`` applies ``Bx = Ax - d (d^T x) / 2m`` with one sparse
matvec, and ``eigsh`` extracts the top eigenpairs.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse.linalg import LinearOperator, eigsh

from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, derive_seed, ensure_rng
from repro.utils.validation import check_integer


def _kmeans(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator,
    n_iterations: int = 100,
    n_restarts: int = 4,
) -> np.ndarray:
    """Lloyd's k-means with k-means++-style seeding and restarts."""
    n = len(points)
    best_labels = np.zeros(n, dtype=np.int64)
    best_inertia = np.inf
    for _ in range(n_restarts):
        # k-means++ seeding.
        centers = [points[int(rng.integers(0, n))]]
        for _ in range(1, k):
            d2 = np.min(
                [np.sum((points - c) ** 2, axis=1) for c in centers], axis=0
            )
            total = float(d2.sum())
            if total <= 0:
                centers.append(points[int(rng.integers(0, n))])
                continue
            probs = d2 / total
            centers.append(points[int(rng.choice(n, p=probs))])
        center_arr = np.asarray(centers)

        labels = np.zeros(n, dtype=np.int64)
        for _ in range(n_iterations):
            distances = (
                np.sum(points**2, axis=1)[:, None]
                - 2.0 * points @ center_arr.T
                + np.sum(center_arr**2, axis=1)[None, :]
            )
            new_labels = np.argmin(distances, axis=1)
            if np.array_equal(new_labels, labels):
                labels = new_labels
                break
            labels = new_labels
            for c in range(k):
                members = points[labels == c]
                if len(members):
                    center_arr[c] = members.mean(axis=0)
        inertia = float(
            np.sum((points - center_arr[labels]) ** 2)
        )
        if inertia < best_inertia:
            best_inertia = inertia
            best_labels = labels
    return best_labels


def spectral_communities(
    graph: Graph,
    n_communities: int,
    seed: SeedLike = None,
) -> np.ndarray:
    """Partition ``graph`` into ``n_communities`` spectrally.

    Parameters
    ----------
    graph:
        Input graph (must have at least one edge).
    n_communities:
        Target number of communities ``k``; the top ``min(k, n-1)``
        modularity-matrix eigenvectors form the embedding.
    seed:
        Controls k-means seeding.

    Examples
    --------
    >>> from repro.graphs import ring_of_cliques
    >>> graph, truth = ring_of_cliques(3, 8)
    >>> labels = spectral_communities(graph, 3, seed=0)
    >>> len(set(labels.tolist()))
    3
    """
    k = check_integer(n_communities, "n_communities", minimum=1)
    n = graph.n_nodes
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if k == 1 or n <= k:
        return np.arange(n, dtype=np.int64) % k

    rng = ensure_rng(seed)
    adjacency = graph.sparse_adjacency()
    degrees = np.asarray(graph.degrees)
    two_m = 2.0 * graph.total_weight
    if two_m == 0:
        return np.arange(n, dtype=np.int64) % k

    def matvec(x: np.ndarray) -> np.ndarray:
        return adjacency @ x - degrees * (degrees @ x) / two_m

    operator = LinearOperator((n, n), matvec=matvec, dtype=np.float64)
    n_vectors = min(k, n - 2) if n > 2 else 1
    v0 = ensure_rng(derive_seed(rng, 0)).standard_normal(n)
    _, vectors = eigsh(operator, k=max(1, n_vectors), which="LA", v0=v0)
    return _kmeans(np.ascontiguousarray(vectors), k, rng)
