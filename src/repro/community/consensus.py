"""Consensus clustering over repeated stochastic detection runs.

Stochastic pipelines (QHD sampling, randomised refinement) produce
slightly different partitions run to run; consensus clustering combines
``n_runs`` of them into a stabler answer.  The classical recipe
(Lancichinetti & Fortunato): build the co-association matrix ``C`` where
``C[i, j]`` is the fraction of runs placing ``i`` and ``j`` together,
threshold it, and extract the connected components of the thresholded
agreement graph (re-running detection on the agreement graph when it is
still ambiguous).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.community.modularity import modularity
from repro.community.result import CommunityResult
from repro.exceptions import PartitionError
from repro.graphs.graph import Graph
from repro.utils.timer import Stopwatch
from repro.utils.validation import check_integer, check_probability


def co_association_matrix(partitions: list[np.ndarray]) -> np.ndarray:
    """Fraction of partitions placing each node pair together.

    Examples
    --------
    >>> import numpy as np
    >>> c = co_association_matrix([np.array([0, 0, 1]), np.array([0, 1, 1])])
    >>> float(c[0, 1])
    0.5
    """
    if not partitions:
        raise PartitionError("need at least one partition")
    n = len(partitions[0])
    matrix = np.zeros((n, n), dtype=np.float64)
    for labels in partitions:
        labels = np.asarray(labels)
        if labels.shape != (n,):
            raise PartitionError(
                "all partitions must cover the same node set"
            )
        matrix += (labels[:, None] == labels[None, :]).astype(np.float64)
    matrix /= len(partitions)
    return matrix


def consensus_labels(
    partitions: list[np.ndarray], threshold: float = 0.5
) -> np.ndarray:
    """Components of the thresholded co-association graph.

    Nodes that co-occur in more than ``threshold`` of the runs are linked;
    the connected components of that agreement graph are the consensus
    communities.
    """
    check_probability(threshold, "threshold")
    matrix = co_association_matrix(partitions)
    n = matrix.shape[0]
    adjacency = matrix > threshold
    labels = np.full(n, -1, dtype=np.int64)
    current = 0
    for start in range(n):
        if labels[start] >= 0:
            continue
        stack = [start]
        labels[start] = current
        while stack:
            node = stack.pop()
            for neighbor in np.flatnonzero(adjacency[node]):
                if labels[neighbor] < 0:
                    labels[neighbor] = current
                    stack.append(int(neighbor))
        current += 1
    return labels


def consensus_detect(
    graph: Graph,
    detect: Callable[[int], np.ndarray],
    n_runs: int = 8,
    threshold: float = 0.5,
) -> CommunityResult:
    """Run ``detect(run_index) -> labels`` repeatedly and build a consensus.

    Parameters
    ----------
    graph:
        The graph being partitioned (for the final modularity).
    detect:
        Callable returning a label vector for a given run index (the
        index should seed the run's randomness).
    n_runs:
        Number of detection runs to combine.
    threshold:
        Co-association threshold for the agreement graph.

    Returns
    -------
    A :class:`CommunityResult` whose labels are the consensus and whose
    metadata records per-run modularities and the agreement level.
    """
    check_integer(n_runs, "n_runs", minimum=1)
    watch = Stopwatch().start()
    partitions = [np.asarray(detect(run)) for run in range(n_runs)]
    labels = consensus_labels(partitions, threshold=threshold)
    watch.stop()

    matrix = co_association_matrix(partitions)
    off_diagonal = matrix[~np.eye(len(matrix), dtype=bool)]
    run_scores = [modularity(graph, p) for p in partitions]
    return CommunityResult(
        labels=labels,
        modularity=modularity(graph, labels),
        method="consensus",
        wall_time=watch.elapsed,
        metadata={
            "n_runs": n_runs,
            "threshold": threshold,
            "run_modularities": run_scores,
            "mean_agreement": float(off_diagonal.mean())
            if off_diagonal.size
            else 1.0,
        },
    )
