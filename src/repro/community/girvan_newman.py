"""Girvan-Newman divisive community detection (paper ref [31]).

The classic hierarchical baseline: repeatedly remove the edge with the
highest betweenness centrality and keep the component split with the best
modularity.  O(n m^2) — only practical for small networks, which is
exactly the Table I regime where the paper compares against classical
exact optimisation.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.community.modularity import modularity
from repro.graphs.graph import Graph
from repro.utils.validation import check_integer


def edge_betweenness(
    graph: Graph, active: set[tuple[int, int]]
) -> dict[tuple[int, int], float]:
    """Brandes-style edge betweenness restricted to ``active`` edges."""
    betweenness = {edge: 0.0 for edge in active}
    adjacency: dict[int, list[int]] = {i: [] for i in range(graph.n_nodes)}
    for u, v in active:
        adjacency[u].append(v)
        adjacency[v].append(u)

    for source in range(graph.n_nodes):
        # BFS shortest-path counting.
        sigma = np.zeros(graph.n_nodes)
        sigma[source] = 1.0
        distance = np.full(graph.n_nodes, -1)
        distance[source] = 0
        order: list[int] = []
        queue = deque([source])
        predecessors: dict[int, list[int]] = {
            i: [] for i in range(graph.n_nodes)
        }
        while queue:
            node = queue.popleft()
            order.append(node)
            for neighbor in adjacency[node]:
                if distance[neighbor] < 0:
                    distance[neighbor] = distance[node] + 1
                    queue.append(neighbor)
                if distance[neighbor] == distance[node] + 1:
                    sigma[neighbor] += sigma[node]
                    predecessors[neighbor].append(node)
        # Back-propagation of dependencies.
        delta = np.zeros(graph.n_nodes)
        for node in reversed(order):
            for pred in predecessors[node]:
                share = (sigma[pred] / sigma[node]) * (1.0 + delta[node])
                edge = (min(pred, node), max(pred, node))
                betweenness[edge] += share
                delta[pred] += share
    return betweenness


def _components_with_edges(
    n_nodes: int, active: set[tuple[int, int]]
) -> np.ndarray:
    """Component labels of the graph restricted to ``active`` edges."""
    adjacency: dict[int, list[int]] = {i: [] for i in range(n_nodes)}
    for u, v in active:
        adjacency[u].append(v)
        adjacency[v].append(u)
    labels = np.full(n_nodes, -1, dtype=np.int64)
    current = 0
    for start in range(n_nodes):
        if labels[start] >= 0:
            continue
        stack = [start]
        labels[start] = current
        while stack:
            node = stack.pop()
            for neighbor in adjacency[node]:
                if labels[neighbor] < 0:
                    labels[neighbor] = current
                    stack.append(neighbor)
        current += 1
    return labels


def girvan_newman(
    graph: Graph,
    max_communities: int | None = None,
    max_removals: int | None = None,
) -> np.ndarray:
    """Run Girvan-Newman and return the best-modularity split found.

    Parameters
    ----------
    graph:
        Input graph (use small graphs; the algorithm is O(n m^2)).
    max_communities:
        Stop once the split reaches this many components (``None`` = run
        until modularity stops improving or edges run out).
    max_removals:
        Hard cap on removed edges (defaults to all of them).

    Examples
    --------
    >>> from repro.graphs import ring_of_cliques
    >>> graph, truth = ring_of_cliques(3, 5)
    >>> labels = girvan_newman(graph)
    >>> len(set(labels.tolist()))
    3
    """
    if max_communities is not None:
        check_integer(max_communities, "max_communities", minimum=1)
    active = {
        (u, v) for u, v, _ in graph.edges() if u != v
    }
    if max_removals is None:
        max_removals = len(active)
    check_integer(max_removals, "max_removals", minimum=0)

    best_labels = _components_with_edges(graph.n_nodes, active)
    best_q = modularity(graph, best_labels)

    for _ in range(max_removals):
        if not active:
            break
        betweenness = edge_betweenness(graph, active)
        worst = max(betweenness, key=lambda e: (betweenness[e], e))
        active.discard(worst)
        labels = _components_with_edges(graph.n_nodes, active)
        q = modularity(graph, labels)
        if q > best_q:
            best_q = q
            best_labels = labels
        n_components = int(labels.max()) + 1
        if max_communities is not None and n_components >= max_communities:
            break
    return best_labels
