"""Declarative run specifications and structured run artifacts.

A :class:`RunSpec` is the JSON-serialisable description of one
detection/solve configuration — which detector, which solver, their
config dicts, the community count and the seed.  It is the unit the
``repro.api`` facade consumes (:func:`repro.api.detect`,
:func:`repro.api.detect_batch`, ``repro detect --spec spec.json``) and
the unit experiments should persist for reproducibility.

A :class:`RunArtifact` is the structured outcome of executing one spec
on one input: the spec itself, the result object, wall-clock timings and
the effective seed, all JSON-serialisable via :meth:`RunArtifact.to_dict`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.exceptions import ReproError
from repro.utils.serialization import to_jsonable


class SpecError(ReproError):
    """Raised for malformed run specifications."""


@dataclass(frozen=True)
class RunSpec:
    """One reproducible run configuration.

    Attributes
    ----------
    detector:
        Registered detector name (see ``repro.api.DETECTORS``).
    detector_config:
        Config dict for the detector's ``from_config``.
    solver:
        Registered solver name; ``None`` keeps the detector's default
        (QHD).  Ignored when ``detector_config`` already pins a
        ``"solver"`` entry.
    solver_config:
        Config dict for the solver's ``from_config``; only valid
        together with ``solver`` (a detector's built-in default solver
        is not configurable through it).
    n_communities:
        Community count ``k`` for detection runs (optional for pure
        QUBO solves).
    seed:
        Run seed, injected into solver/detector configs that accept a
        ``seed`` key and do not already set one.

    Examples
    --------
    >>> spec = RunSpec.from_dict({
    ...     "detector": "qhd",
    ...     "solver": "simulated-annealing",
    ...     "solver_config": {"n_sweeps": 50},
    ...     "n_communities": 3,
    ...     "seed": 7,
    ... })
    >>> spec.solver
    'simulated-annealing'
    """

    detector: str = "qhd"
    detector_config: dict[str, Any] = field(default_factory=dict)
    solver: str | None = None
    solver_config: dict[str, Any] = field(default_factory=dict)
    n_communities: int | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.detector, str) or not self.detector:
            raise SpecError("detector must be a non-empty name string")
        for label in ("detector_config", "solver_config"):
            if not isinstance(getattr(self, label), dict):
                raise SpecError(f"{label} must be a dict")
        if self.solver is None and self.solver_config:
            raise SpecError(
                "solver_config requires a solver name: without one the "
                "detector builds its own default solver and the config "
                "would be silently dropped"
            )

    # ------------------------------------------------------------------
    # Round-trips
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunSpec":
        """Build a spec from a plain dict, rejecting unknown keys."""
        if not isinstance(data, dict):
            raise SpecError(
                f"spec must be a dict, got {type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(
                f"unknown spec keys: {unknown}; "
                f"known keys: {sorted(known)}"
            )
        return cls(**data)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form; inverse of :meth:`from_dict`."""
        return {
            "detector": self.detector,
            "detector_config": to_jsonable(self.detector_config),
            "solver": self.solver,
            "solver_config": to_jsonable(self.solver_config),
            "n_communities": self.n_communities,
            "seed": self.seed,
        }

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        """Parse a spec from its JSON text form."""
        return cls.from_dict(json.loads(text))

    def to_json(self, indent: int | None = 2) -> str:
        """JSON text form; inverse of :meth:`from_json`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_file(cls, path: str | Path) -> "RunSpec":
        """Load a spec from a JSON file."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def replace(self, **changes: Any) -> "RunSpec":
        """A copy of the spec with ``changes`` applied."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class RunArtifact:
    """Structured outcome of executing one :class:`RunSpec`.

    Attributes
    ----------
    spec:
        The spec that produced this run.
    result:
        :class:`repro.community.CommunityResult` for detection runs or
        :class:`repro.solvers.SolveResult` for solve runs.
    timings:
        Wall-clock breakdown in seconds (``build`` — component
        construction, ``run`` — the solve/detect call, ``total``).
    seed:
        Effective run seed (the spec's, echoed for provenance).
    index:
        Position of the input within a batch (0 for single runs).

    Examples
    --------
    >>> import json
    >>> import numpy as np
    >>> import repro.api as api
    >>> from repro.qubo import QuboModel
    >>> model = QuboModel(np.zeros((2, 2)), [-1.0, 1.0])
    >>> artifact = api.solve(model, {"solver": "greedy", "seed": 0})
    >>> sorted(artifact.timings)
    ['build', 'run', 'total']
    >>> json.loads(artifact.to_json())["spec"]["solver"]
    'greedy'
    """

    spec: RunSpec
    result: Any
    timings: dict[str, float] = field(default_factory=dict)
    seed: int | None = None
    index: int = 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict: spec + result + timings + seed."""
        return {
            "spec": self.spec.to_dict(),
            "result": to_jsonable(self.result),
            "timings": {k: float(v) for k, v in self.timings.items()},
            "seed": self.seed,
            "index": self.index,
        }

    def to_json(self, indent: int | None = 2) -> str:
        """JSON text of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)
