"""Declarative configuration round-trips for solvers and detectors.

:class:`Configurable` is the mixin behind the ``repro.api`` facade's
"one dict describes one component" contract: every registered solver and
detector can be built from a plain config dict (``from_config``) and
serialised back into one (``to_config``) such that

    cls.from_config(obj.to_config()).to_config() == obj.to_config()

holds.  The mixin derives the config schema from the constructor
signature, so classes only need to store each constructor parameter as
an attribute (``self.<name>``, the private ``self._<name>``, or an
explicit ``_config_aliases`` entry when the stored attribute is a
normalised form of the argument).
"""

from __future__ import annotations

import dataclasses
import inspect
import math
from typing import Any, TypeVar

from repro.exceptions import ReproError

_C = TypeVar("_C", bound="Configurable")


class ConfigError(ReproError):
    """Raised for invalid ``from_config`` / ``to_config`` usage."""


def _init_fields(cls: type) -> tuple[str, ...]:
    """Constructor parameter names of ``cls`` (excluding ``self``/varargs)."""
    if dataclasses.is_dataclass(cls):
        return tuple(f.name for f in dataclasses.fields(cls) if f.init)
    params = inspect.signature(cls.__init__).parameters
    return tuple(
        name
        for name, p in params.items()
        if name != "self"
        and p.kind not in (p.VAR_POSITIONAL, p.VAR_KEYWORD)
    )


class Configurable:
    """Mixin adding dict-config construction and serialisation.

    Every registered solver and detector mixes this in, giving the
    ``repro.api`` facade its "one JSON dict describes one component"
    contract.

    Examples
    --------
    >>> from repro.api import SOLVERS
    >>> solver = SOLVERS.get("tabu").from_config({"n_iterations": 500})
    >>> solver.to_config()["n_iterations"]
    500
    >>> try:  # unknown keys are rejected, naming the known ones
    ...     SOLVERS.get("tabu").from_config({"bogus": 1})
    ... except ConfigError as err:
    ...     "known keys" in str(err)
    True
    """

    #: Constructor-parameter -> stored-attribute overrides, for classes
    #: that normalise an argument on assignment but keep the original
    #: under a different attribute (e.g. QhdSolver's ``schedule``).
    _config_aliases: dict[str, str] = {}

    @classmethod
    def config_fields(cls) -> tuple[str, ...]:
        """Names of the config keys accepted by :meth:`from_config`.

        Examples
        --------
        >>> from repro.api import SOLVERS
        >>> "n_sweeps" in SOLVERS.get("simulated-annealing").config_fields()
        True
        """
        return _init_fields(cls)

    @classmethod
    def _coerce_config(cls, config: dict[str, Any]) -> dict[str, Any]:
        """Hook: normalise nested values (spec dicts -> objects)."""
        return config

    @classmethod
    def from_config(
        cls: type[_C], config: dict[str, Any] | None = None
    ) -> _C:
        """Instantiate from a config dict, rejecting unknown keys.

        Examples
        --------
        >>> from repro.solvers import GreedySolver
        >>> GreedySolver.from_config({"n_restarts": 3}).n_restarts
        3
        """
        config = {} if config is None else config
        if not isinstance(config, dict):
            raise ConfigError(
                f"{cls.__name__}.from_config expects a dict, "
                f"got {type(config).__name__}"
            )
        known = cls.config_fields()
        unknown = sorted(set(config) - set(known))
        if unknown:
            raise ConfigError(
                f"unknown config keys for {cls.__name__}: {unknown}; "
                f"known keys: {sorted(known)}"
            )
        return cls(**cls._coerce_config(dict(config)))

    def to_config(self) -> dict[str, Any]:
        """Serialise the instance back into a config dict.

        Non-finite floats lower to ``None`` so the dict survives strict
        ``json.dumps`` (``Infinity`` is not valid JSON); constructors
        read ``None`` back as the non-finite sentinel (e.g. solver
        ``time_limit=None`` -> no limit).

        Examples
        --------
        >>> from repro.solvers import TabuSolver
        >>> TabuSolver().to_config()["time_limit"] is None  # inf -> None
        True
        """
        config: dict[str, Any] = {}
        for name in self.config_fields():
            alias = self._config_aliases.get(name)
            if alias is not None and hasattr(self, alias):
                value = getattr(self, alias)
            elif hasattr(self, name):
                value = getattr(self, name)
            elif hasattr(self, "_" + name):
                value = getattr(self, "_" + name)
            else:
                raise ConfigError(
                    f"{type(self).__name__} does not store constructor "
                    f"parameter {name!r}; add a _config_aliases entry"
                )
            if isinstance(value, float) and not math.isfinite(value):
                value = None
            config[name] = value
        return config
