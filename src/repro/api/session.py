"""Reusable run sessions: pooled engines + persistent worker executors.

A :class:`Session` is the service-shaped counterpart of the one-shot
:func:`repro.api.detect` / :func:`repro.api.solve` verbs.  It owns the
reusable runtime state:

* an :class:`repro.qhd.pool.EnginePool` — every QHD solver built by the
  session leases its evolution engine (phase tables + workspace
  buffers) from the pool instead of constructing one, so repeated runs
  and same-shape batches amortise the whole-run precomputation;
* a persistent batch executor — ``executor="thread"`` (the default)
  fans batches out over one long-lived
  :class:`~concurrent.futures.ThreadPoolExecutor`;
  ``executor="process"`` shards them over a persistent
  :class:`~concurrent.futures.ProcessPoolExecutor` whose workers each
  own a lazily built process-local engine pool, so CPU-bound batches
  scale with cores instead of contending for one GIL.
  ``executor="auto"`` picks processes on multi-core machines.

Process-mode handoff is array-native: graphs ship as
:meth:`repro.graphs.Graph.to_arrays` tuples and QUBO models as
``to_arrays()`` bundles (see :mod:`repro.api.runner`), never pickled
object graphs.  With ``wire="shm"`` (the ``"auto"`` default on the
process backend) the arrays don't even ride the task payload: each
unique input is written once per batch into
:mod:`multiprocessing.shared_memory` segments
(:mod:`repro.api.shm`) and chunks carry only ``(segment, dtype,
shape, offset)`` descriptors, with the creator unlinking every
segment in a ``finally`` and :meth:`Session.close` sweeping any
straggler writers.  Batches are sharded into ``~4 × workers``
contiguous chunks pulled from the executor's shared queue, so a
straggling chunk cannot serialise the tail; results are reassembled
in input order.

Determinism is unchanged by any of this: every run still gets its own
freshly built, identically-seeded pipeline, so **batch ≡ sequence of
seeded single runs, bit-exact, for every executor and any chunking**
(pinned by ``tests/api/test_session.py`` and
``tests/api/test_executors.py``).

The module-level facade verbs delegate to a process-wide
:func:`default_session`, so plain ``api.detect_batch(...)`` calls
amortise engine setup automatically.  An :mod:`atexit` hook closes the
default session on interpreter exit, shutting down its executors (with
a process pool this is what reaps the worker processes).

Examples
--------
>>> import repro.api as api
>>> from repro.graphs import ring_of_cliques
>>> graphs = [ring_of_cliques(3, 5)[0] for _ in range(3)]
>>> spec = {"solver": "greedy", "n_communities": 3, "seed": 0}
>>> with api.Session() as session:
...     artifacts = session.detect_batch(graphs, spec, max_workers=2)
...     [a.index for a in artifacts]
[0, 1, 2]
"""

from __future__ import annotations

import atexit
import contextlib
import multiprocessing
import os
import threading
import warnings
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from types import TracebackType
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.api import runner
from repro.api.config import Configurable
from repro.api.spec import RunArtifact, RunSpec
from repro.exceptions import ReproError
from repro.qhd.pool import EnginePool

if TYPE_CHECKING:
    from repro.api.shm import ShmBatchWriter

#: Batch fan-outs are sharded into up to this many chunks per worker.
#: More chunks than workers is what makes the shared submission queue a
#: work-stealing structure: a worker that finishes early pulls the next
#: chunk instead of idling behind a straggler.
CHUNKS_PER_WORKER = 4

_EXECUTORS = ("thread", "process", "auto")

_WIRES = ("pickle", "shm", "auto")

#: Zeroed wire-counter template (shared keys with
#: :meth:`repro.api.shm.ShmBatchWriter.counters`).
_WIRE_COUNTER_KEYS = (
    "segments_created",
    "bundles_encoded",
    "bundles_reused",
    "bytes_shipped",
    "bytes_referenced",
)


class SessionError(ReproError):
    """Raised for invalid session usage (e.g. running after close)."""


def _default_width() -> int:
    return min(8, os.cpu_count() or 1)


def _mp_context() -> multiprocessing.context.BaseContext | None:
    """The multiprocessing context for worker pools (fork when available).

    Fork keeps worker start-up cheap and inherits the already-imported
    library; platforms without it (Windows, macOS spawn-default Pythons
    still expose fork=no) fall back to the platform default — every
    worker entry point is a module-level function with array payloads,
    so spawn works too, just with a slower first batch.
    """
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


class Session(Configurable):
    """A reusable run context amortising per-run setup across calls.

    Parameters
    ----------
    max_workers:
        Width of the session's persistent executor (and the default
        fan-out of :meth:`detect_batch` / :meth:`solve_batch`).
        ``None`` sizes it to ``min(8, cpu_count)``.  Requests for a
        *wider* per-call fan-out are clamped to this width with a
        :class:`RuntimeWarning` (the executor is sized once per
        session); narrower requests are honoured exactly.
    max_idle_engines:
        Idle evolution engines kept per distinct run shape in the
        session's engine pool (see
        :class:`repro.qhd.pool.EnginePool`).  In process mode each
        worker's pool uses the same cap.
    pooling:
        ``False`` disables engine pooling entirely — every run
        constructs fresh engines, exactly like the pre-session code
        path.  Useful for A/B benchmarking the pool itself.
    executor:
        ``"thread"`` (default) fans batches out over a persistent
        thread pool; ``"process"`` shards them over a persistent
        process pool with per-worker engine pools and array-native
        input handoff; ``"auto"`` resolves to ``"process"`` on
        multi-core machines and ``"thread"`` otherwise.  Single
        :meth:`detect` / :meth:`solve` calls always run in-process —
        the knob only shapes batch fan-out, never results.
    wire:
        How process-mode batches hand their inputs to workers.
        ``"shm"`` writes each unique input's arrays into
        shared-memory segments once per batch and ships only
        descriptors (:mod:`repro.api.shm`); ``"pickle"`` ships the
        arrays inside the task payload (the PR 6 wire); ``"auto"``
        (default) resolves to ``"shm"``.  Thread and sequential
        backends never serialise inputs, so the knob is a no-op
        there.  Like ``executor``, it shapes throughput only, never
        results.

    Like every other knob in the library, the constructor parameters
    round-trip through :meth:`Configurable.to_config` /
    :meth:`Configurable.from_config`, so one JSON dict reproduces a
    configured session.

    Examples
    --------
    >>> import repro.api as api
    >>> from repro.graphs import ring_of_cliques
    >>> graph, _ = ring_of_cliques(3, 5)
    >>> session = api.Session()
    >>> spec = {"solver": "greedy", "n_communities": 3, "seed": 0}
    >>> a = session.detect(graph, spec)
    >>> b = session.detect(graph, spec)  # seeded: identical result
    >>> bool((a.result.labels == b.result.labels).all())
    True
    >>> session.close()
    >>> api.Session.from_config(
    ...     {"executor": "process", "max_workers": 2}).to_config()[
    ...     "executor"]
    'process'
    """

    def __init__(
        self,
        max_workers: int | None = None,
        max_idle_engines: int = 4,
        pooling: bool = True,
        executor: str = "thread",
        wire: str = "auto",
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise SessionError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if executor not in _EXECUTORS:
            raise SessionError(
                f"executor must be one of {list(_EXECUTORS)}, "
                f"got {executor!r}"
            )
        if wire not in _WIRES:
            raise SessionError(
                f"wire must be one of {list(_WIRES)}, got {wire!r}"
            )
        self._max_workers = (
            _default_width() if max_workers is None else int(max_workers)
        )
        self._max_idle_engines = int(max_idle_engines)
        self._pooling = bool(pooling)
        self._executor = executor
        self._wire = wire
        self._backend = (
            ("process" if (os.cpu_count() or 1) > 1 else "thread")
            if executor == "auto"
            else executor
        )
        self._engine_pool = (
            EnginePool(max_idle_per_key=self._max_idle_engines)
            if pooling
            else None
        )
        self._thread_executor: ThreadPoolExecutor | None = None
        self._process_executor: ProcessPoolExecutor | None = None
        self._dispatch_executor: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self._closed = False
        self._runs = 0
        self._clamped_calls = 0
        self._clamp_warned: set[int] = set()
        self._wire_counters = dict.fromkeys(_WIRE_COUNTER_KEYS, 0)
        self._shm_writers: set[ShmBatchWriter] = set()

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def engine_pool(self) -> EnginePool | None:
        """The session's engine pool (``None`` when pooling is off).

        In process mode this parent pool serves single :meth:`detect` /
        :meth:`solve` calls and accumulates the per-worker pools'
        counters, merged back after every batch chunk.
        """
        return self._engine_pool

    @property
    def max_workers(self) -> int:
        """Width of the persistent executor."""
        return self._max_workers

    @property
    def executor_backend(self) -> str:
        """The resolved batch backend: ``"thread"`` or ``"process"``."""
        return self._backend

    @property
    def wire_mode(self) -> str:
        """The resolved process-batch wire: ``"pickle"`` or ``"shm"``.

        Only meaningful when :attr:`executor_backend` is
        ``"process"`` — the other backends never serialise inputs.
        """
        return "shm" if self._wire == "auto" else self._wire

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def stats(self) -> dict[str, Any]:
        """Run counters plus the engine pool's counters (JSON-ready).

        In process mode the pool counters include the per-worker pools'
        work, merged back chunk by chunk.
        """
        with self._lock:
            runs = self._runs
            clamped = self._clamped_calls
            wire_counters = dict(self._wire_counters)
        return {
            "runs": runs,
            "clamped_calls": clamped,
            "max_workers": self._max_workers,
            "executor": self._backend,
            "wire": {"mode": self.wire_mode, **wire_counters},
            "engine_pool": (
                None
                if self._engine_pool is None
                else self._engine_pool.stats()
            ),
        }

    def close(self) -> None:
        """Shut the executors down and drop every idle engine.

        In process mode this terminates the worker processes and
        sweeps any shared-memory batch writer that has not yet been
        closed by its batch's own ``finally`` (the straggler
        guarantee: no segment this session created outlives it).
        Idempotent; further run calls raise :class:`SessionError`.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            dispatch_executor, self._dispatch_executor = (
                self._dispatch_executor, None,
            )
            thread_executor, self._thread_executor = (
                self._thread_executor, None,
            )
            process_executor, self._process_executor = (
                self._process_executor, None,
            )
            writers, self._shm_writers = self._shm_writers, set()
        # The dispatch pool first: in-flight submitted jobs may still be
        # waiting on the batch executors, so those must outlive it.
        if dispatch_executor is not None:
            dispatch_executor.shutdown(wait=True)
        if thread_executor is not None:
            thread_executor.shutdown(wait=True)
        if process_executor is not None:
            process_executor.shutdown(wait=True)
        for writer in writers:
            writer.close()
        if self._engine_pool is not None:
            self._engine_pool.clear()

    def __enter__(self) -> "Session":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return (
            f"Session(max_workers={self._max_workers}, "
            f"executor={self._backend!r}, "
            f"pooling={self._engine_pool is not None}, {state})"
        )

    # ------------------------------------------------------------------
    # Run verbs
    # ------------------------------------------------------------------
    def detect(self, graph: Any, spec: Any) -> RunArtifact:
        """Run one detection spec on ``graph`` (see :func:`repro.api.detect`)."""
        self._check_open()
        artifact = runner._detect_one(
            graph, runner._spec_of(spec), 0, engine_pool=self._engine_pool
        )
        self._count(1)
        return artifact

    def solve(self, model: Any, spec: Any) -> RunArtifact:
        """Run one solve spec on ``model`` (see :func:`repro.api.solve`)."""
        self._check_open()
        artifact = runner._solve_one(
            model, runner._spec_of(spec), 0, engine_pool=self._engine_pool
        )
        self._count(1)
        return artifact

    def submit(
        self,
        item: Any,
        spec: Any,
        kind: str | None = None,
    ) -> "Future[RunArtifact]":
        """Submit one run and return its :class:`~concurrent.futures.Future`.

        The awaitable counterpart of :meth:`detect` / :meth:`solve` and
        the submission surface behind :class:`repro.api.AsyncSession`
        and ``repro serve``: the call returns immediately with a
        ``Future[RunArtifact]`` while the run executes on the session's
        dispatch pool (a persistent thread pool sized like the batch
        executor, so at most ``max_workers`` submitted runs execute
        concurrently; further submissions queue).  On the process
        backend the dispatch thread forwards the run to the persistent
        process pool as a single-item chunk over the array wire, so
        CPU-bound submissions scale with cores exactly like batches.

        Parameters
        ----------
        item:
            A :class:`repro.graphs.Graph` (detection) or a QUBO model
            (solve).
        spec:
            The :class:`RunSpec` (or dict / JSON text) to run.
        kind:
            ``"detect"`` or ``"solve"``; ``None`` (default) infers it
            from ``item``'s type — graphs detect, everything else
            solves.

        Determinism is the single-run contract: a submitted seeded run
        is bit-identical to the corresponding :meth:`detect` /
        :meth:`solve` call.

        Examples
        --------
        >>> import repro.api as api
        >>> from repro.graphs import ring_of_cliques
        >>> graph, _ = ring_of_cliques(3, 5)
        >>> with api.Session() as session:
        ...     future = session.submit(
        ...         graph, {"solver": "greedy",
        ...                 "n_communities": 3, "seed": 0})
        ...     future.result().result.n_communities
        3
        """
        self._check_open()
        resolved = runner._spec_of(spec)
        if kind is None:
            from repro.graphs.graph import Graph

            kind = "detect" if isinstance(item, Graph) else "solve"
        if kind not in ("detect", "solve"):
            raise SessionError(
                f"kind must be 'detect' or 'solve', got {kind!r}"
            )
        return self._dispatch(self._run_submitted, kind, item, resolved)

    def detect_stream(
        self,
        graph: Any,
        updates: Any,
        spec: Any,
        warm_start: bool = True,
    ) -> Any:
        """Stream detection over edge-event batches through this session.

        See :func:`repro.api.detect_stream` — every per-batch QHD
        solve leases engines from this session's pool, and the
        incremental QUBO / flip-delta state stays warm across batches.
        """
        from repro.api.stream import detect_stream

        return detect_stream(
            graph, updates, spec, session=self, warm_start=warm_start
        )

    def detect_batch(
        self,
        graphs: Sequence[Any],
        spec: Any,
        max_workers: int | None = None,
    ) -> list[RunArtifact]:
        """Fan one detection spec over many graphs, order-preserving.

        Every graph gets its own freshly built, identically-seeded
        detector (batch ≡ sequence of single runs, bit-exact, for every
        executor, wire mode and chunking).  ``spec`` may also be a
        list/tuple of specs aligned one-to-one with ``graphs`` —
        per-item seeds and configs for sweep drivers — with the same
        contract per item.  ``max_workers`` above the session's width
        is clamped to it with a warning; narrower requests are
        honoured exactly.
        """
        return self._run_batch("detect", graphs, spec, max_workers)

    def solve_batch(
        self,
        models: Sequence[Any],
        spec: Any,
        max_workers: int | None = None,
    ) -> list[RunArtifact]:
        """Fan one solve spec over many QUBO models, order-preserving.

        The solve-side counterpart of :meth:`detect_batch`: each model
        gets a freshly built, identically-seeded solver, so the batch
        reproduces the corresponding sequence of single :meth:`solve`
        calls for any worker count, executor backend and wire mode.
        ``spec`` may be a list/tuple of specs aligned with ``models``.
        """
        return self._run_batch("solve", models, spec, max_workers)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise SessionError("session is closed")

    def _count(self, n: int) -> None:
        with self._lock:
            self._runs += n

    def _ensure_thread_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._closed:
                raise SessionError("session is closed")
            if self._thread_executor is None:
                self._thread_executor = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="repro-session",
                )
            return self._thread_executor

    def _ensure_process_executor(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._closed:
                raise SessionError("session is closed")
            if self._process_executor is None:
                self._process_executor = ProcessPoolExecutor(
                    max_workers=self._max_workers,
                    mp_context=_mp_context(),
                    initializer=runner._worker_initializer,
                    initargs=(self._pooling, self._max_idle_engines, 16),
                )
            return self._process_executor

    def _ensure_dispatch_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._closed:
                raise SessionError("session is closed")
            if self._dispatch_executor is None:
                self._dispatch_executor = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="repro-submit",
                )
            return self._dispatch_executor

    def _dispatch(
        self, fn: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> "Future[Any]":
        """Run ``fn`` on the dispatch pool and return its future.

        The dispatch pool is separate from the batch executors on
        purpose: a dispatched call may itself block on the thread or
        process batch pool (``AsyncSession.detect_batch`` does exactly
        that), and sharing one pool for both the blocking entry points
        and the work they fan out would deadlock at saturation.
        """
        return self._ensure_dispatch_executor().submit(fn, *args, **kwargs)

    def _run_submitted(self, kind: str, item: Any, spec: RunSpec) -> Any:
        """Dispatch-pool body of one :meth:`submit` job."""
        if self._backend == "process":
            executor = self._ensure_process_executor()
            tag, payload = runner._encode_input(item)
            from repro.api import shm as shm_wire

            self._fold_wire_counters(
                {"bytes_shipped": shm_wire.payload_nbytes(tag, payload)}
            )
            chunk_results, delta = executor.submit(
                runner._run_chunk, kind, spec.to_dict(), [(0, (tag, payload))]
            ).result()
            if delta is not None and self._engine_pool is not None:
                self._engine_pool.merge_counters(delta)
            artifact = chunk_results[0][1]
        else:
            run_one = (
                runner._detect_one if kind == "detect" else runner._solve_one
            )
            artifact = run_one(item, spec, 0, engine_pool=self._engine_pool)
        self._count(1)
        return artifact

    def _resolve_width(self, max_workers: int | None, n_inputs: int) -> int:
        """Clamp a per-call width request to the session's executor.

        The persistent executor is sized once per session, so a *wider*
        request cannot be honoured; mirroring ``build_solver``'s
        warn-don't-drop policy it is clamped to the session width with
        a :class:`RuntimeWarning` rather than silently ignored.
        Narrower requests are honoured exactly.  The warning fires
        **once per requested width** per session — a long-lived service
        issuing thousands of identical oversized requests must not
        flood its logs — while every clamp is tallied in
        ``stats()["clamped_calls"]``.
        """
        width = self._max_workers if max_workers is None else int(max_workers)
        if width > self._max_workers:
            with self._lock:
                self._clamped_calls += 1
                first_time = width not in self._clamp_warned
                if first_time:
                    self._clamp_warned.add(width)
            if first_time:
                warnings.warn(
                    f"max_workers={width} exceeds this session's executor "
                    f"width ({self._max_workers}); clamping to "
                    f"{self._max_workers}.  Build the session with "
                    f"Session(max_workers={width}) to get a wider executor "
                    f"(warning once; further clamps are counted in "
                    f"stats()['clamped_calls'])",
                    RuntimeWarning,
                    stacklevel=4,
                )
            width = self._max_workers
        return max(1, min(width, n_inputs or 1))

    def _resolve_specs(
        self, inputs: list[Any], spec: Any
    ) -> tuple[list[RunSpec], RunSpec | None]:
        """Normalise shared vs per-item specs for a batch.

        Returns ``(specs, shared)``: ``specs`` is always aligned
        one-to-one with ``inputs``; ``shared`` is the single spec when
        one was given (so the process wire can ship it once per chunk)
        and ``None`` for true per-item spec lists.
        """
        if isinstance(spec, (list, tuple)):
            specs = [runner._spec_of(entry) for entry in spec]
            if len(specs) != len(inputs):
                raise SessionError(
                    f"per-item spec sequence has {len(specs)} entries "
                    f"for {len(inputs)} inputs"
                )
            return specs, None
        shared = runner._spec_of(spec)
        return [shared] * len(inputs), shared

    def _run_batch(
        self,
        kind: str,
        inputs: Sequence[Any],
        spec: Any,
        max_workers: int | None,
    ) -> list:
        self._check_open()
        inputs = list(inputs)
        specs, shared = self._resolve_specs(inputs, spec)
        if not inputs:
            # Uniform empty-batch contract for every executor backend:
            # no executor spin-up, no engine-pool traffic, just [].
            return []
        width = self._resolve_width(max_workers, len(inputs))
        run_one = runner._detect_one if kind == "detect" else runner._solve_one
        pool = self._engine_pool
        if width <= 1 or len(inputs) <= 1:
            results = [
                run_one(item, specs[index], index, engine_pool=pool)
                for index, item in enumerate(inputs)
            ]
        elif self._backend == "process":
            results = self._run_batch_processes(
                kind, inputs, specs, shared, width
            )
        else:
            results = self._run_batch_threads(run_one, inputs, specs, width)
        self._count(len(results))
        return results

    def _run_batch_threads(
        self,
        run_one: Callable[..., Any],
        inputs: list[Any],
        specs: list[RunSpec],
        width: int,
    ) -> list:
        """Thread fan-out over the persistent pool.

        A narrower per-call width is honoured with a semaphore bounding
        concurrent runs (determinism is unaffected either way — this
        only shapes throughput).
        """
        executor = self._ensure_thread_executor()
        pool = self._engine_pool
        gate = (
            threading.BoundedSemaphore(width)
            if width < self._max_workers
            else None
        )

        def task(item: Any, index: int) -> Any:
            if gate is None:
                return run_one(item, specs[index], index, engine_pool=pool)
            with gate:
                return run_one(item, specs[index], index, engine_pool=pool)

        futures = [
            executor.submit(task, item, index)
            for index, item in enumerate(inputs)
        ]
        return [future.result() for future in futures]

    def _fold_wire_counters(self, counters: dict[str, int]) -> None:
        with self._lock:
            for key in _WIRE_COUNTER_KEYS:
                self._wire_counters[key] += counters.get(key, 0)

    def _encode_batch(
        self, inputs: list[Any]
    ) -> tuple[list[tuple[str, Any]], "ShmBatchWriter | None", int]:
        """Lower batch inputs onto the resolved wire.

        Returns ``(encoded, writer, bytes_shipped)``.  On the shm wire
        every array bundle goes through one :class:`ShmBatchWriter`
        (deduped on input identity — repeated graphs in one batch share
        a segment) and only descriptors enter the task payloads; on the
        pickle wire (and for ``object``-tag fallbacks either way) the
        payload carries the bytes and they are tallied as shipped.
        """
        from repro.api import shm as shm_wire

        writer: ShmBatchWriter | None = None
        if self.wire_mode == "shm":
            writer = shm_wire.ShmBatchWriter()
            with self._lock:
                self._shm_writers.add(writer)
        encoded: list[tuple[str, Any]] = []
        shipped = 0
        for item in inputs:
            tag, payload = runner._encode_input(item)
            if writer is not None and tag in shm_wire.SHM_TAGS:
                encoded.append(
                    ("shm", writer.encode(tag, payload, key=id(item)))
                )
            else:
                shipped += shm_wire.payload_nbytes(tag, payload)
                encoded.append((tag, payload))
        return encoded, writer, shipped

    def _run_batch_processes(
        self,
        kind: str,
        inputs: list[Any],
        specs: list[RunSpec],
        shared: RunSpec | None,
        width: int,
    ) -> list:
        """Chunked, order-preserving fan-out over the process pool.

        Inputs are lowered to their array wire form
        (:func:`repro.api.runner._encode_input`) — or, on the shm wire,
        to shared-memory descriptors written once per unique input —
        sharded into up to ``CHUNKS_PER_WORKER × width`` contiguous
        chunks and submitted with at most ``width`` chunks in flight:
        the executor's shared queue hands the next chunk to whichever
        worker frees up first, so a straggler only delays its own
        chunk, not the tail.  Worker pool counters ride back with each
        chunk and are merged into the session pool's counters; wire
        counters fold into :meth:`stats`.  The shm writer's segments
        are unlinked in the ``finally`` whether the batch succeeds or a
        worker raises mid-batch.
        """
        executor = self._ensure_process_executor()
        encoded, writer, shipped = self._encode_batch(inputs)
        try:
            shared_payload = None if shared is None else shared.to_dict()
            spec_dicts = (
                None
                if shared is not None
                else [spec.to_dict() for spec in specs]
            )
            n = len(inputs)
            n_chunks = min(n, width * CHUNKS_PER_WORKER)
            base, extra = divmod(n, n_chunks)
            chunks = []
            start = 0
            for chunk_index in range(n_chunks):
                size = base + (1 if chunk_index < extra else 0)
                chunks.append(
                    [(i, encoded[i]) for i in range(start, start + size)]
                )
                start += size

            results: list[Any] = [None] * n
            pending = iter(chunks)
            in_flight = set()

            def submit_next() -> None:
                chunk = next(pending, None)
                if chunk is not None:
                    payload = (
                        shared_payload
                        if spec_dicts is None
                        else [spec_dicts[i] for i, _ in chunk]
                    )
                    in_flight.add(
                        executor.submit(
                            runner._run_chunk, kind, payload, chunk
                        )
                    )

            for _ in range(min(width, n_chunks)):
                submit_next()
            while in_flight:
                done, in_flight = wait(
                    in_flight, return_when=FIRST_COMPLETED
                )
                for future in done:
                    chunk_results, delta = future.result()
                    for index, artifact in chunk_results:
                        results[index] = artifact
                    if delta is not None and self._engine_pool is not None:
                        self._engine_pool.merge_counters(delta)
                    submit_next()
            return results
        finally:
            counters = (
                dict.fromkeys(_WIRE_COUNTER_KEYS, 0)
                if writer is None
                else writer.counters()
            )
            counters["bytes_shipped"] += shipped
            self._fold_wire_counters(counters)
            if writer is not None:
                writer.close()
                with self._lock:
                    self._shm_writers.discard(writer)


@contextlib.contextmanager
def session_scope(
    session: Session | None = None, **kwargs: Any
) -> Any:
    """Yield ``session``, or a temporary ``Session(**kwargs)``.

    The experiment drivers and CLI commands accept an optional caller
    session; this scope is their uniform plumbing — a caller-provided
    session is yielded untouched (the caller owns its lifecycle), and
    the ``None`` case builds a throwaway session that is closed (and
    its shared-memory writers swept) when the block exits.

    Examples
    --------
    >>> from repro.api.session import session_scope
    >>> with session_scope(executor="thread") as session:
    ...     session.closed
    False
    """
    if session is not None:
        yield session
        return
    scoped = Session(**kwargs)
    try:
        yield scoped
    finally:
        scoped.close()


# ----------------------------------------------------------------------
# The process-wide default session behind the module-level verbs
# ----------------------------------------------------------------------
_default_session: Session | None = None
_default_lock = threading.Lock()
#: Set by the atexit hook: once the interpreter is tearing down, no
#: replacement default session may be built — its executors and shm
#: segments would never be reaped (there is no later hook to close
#: them), which is exactly the zombie-session leak the flag prevents.
_default_shutdown = False


def default_session() -> Session:
    """The lazily created process-wide session.

    Backs the module-level :func:`repro.api.detect` /
    :func:`repro.api.solve` / :func:`repro.api.detect_batch` /
    :func:`repro.api.solve_batch` verbs, so plain facade calls amortise
    engine setup and executor spin-up without any session plumbing.
    It is closed automatically on interpreter exit (an :mod:`atexit`
    hook), which shuts its executors down — with a process-pool
    backend that is what reaps the worker processes.

    A default session closed *before* interpreter exit (e.g. by an
    explicit :func:`_close_default_session`) is transparently replaced
    — the still-registered atexit hook reaps the replacement too.
    Once the hook itself has run, building a replacement would leak its
    executors and shared-memory segments with nothing left to close
    them, so facade calls during interpreter teardown raise
    :class:`SessionError` instead.

    Examples
    --------
    >>> import repro.api as api
    >>> api.default_session() is api.default_session()
    True
    """
    global _default_session
    with _default_lock:
        if _default_shutdown:
            raise SessionError(
                "the process-wide default session was already shut down "
                "at interpreter exit; a replacement built this late "
                "would leak its executors.  Create an explicit "
                "Session() and close it yourself if you really need "
                "one during teardown"
            )
        if _default_session is None or _default_session.closed:
            _default_session = Session()
        return _default_session


def _close_default_session() -> None:
    """Close the process-wide default session (idempotent).

    Detaches and closes the current default session; the next
    :func:`default_session` call builds a fresh one (still covered by
    the atexit hook, which closes whatever default session exists when
    the interpreter exits).
    """
    global _default_session
    with _default_lock:
        session, _default_session = _default_session, None
    if session is not None:
        session.close()


def _shutdown_default_session() -> None:
    """Interpreter-exit hook: close the default session **finally**.

    Unlike :func:`_close_default_session` this also latches
    ``_default_shutdown``, so a late facade call cannot silently
    rebuild a zombie session whose process pool and shm segments would
    never be reaped (no atexit hook runs after this one).

    Registered with :mod:`atexit` so a plain-facade process never leaks
    its executors: thread pools are joined and, when a process backend
    was used, the worker processes are shut down instead of lingering
    until the OS reaps them.
    """
    global _default_shutdown
    with _default_lock:
        _default_shutdown = True
    _close_default_session()


atexit.register(_shutdown_default_session)
