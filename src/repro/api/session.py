"""Reusable run sessions: pooled engines + a persistent thread pool.

A :class:`Session` is the service-shaped counterpart of the one-shot
:func:`repro.api.detect` / :func:`repro.api.solve` verbs.  It owns two
pieces of reusable runtime state:

* an :class:`repro.qhd.pool.EnginePool` — every QHD solver built by the
  session leases its evolution engine (phase tables + workspace
  buffers) from the pool instead of constructing one, so repeated runs
  and same-shape batches amortise the whole-run precomputation;
* a persistent :class:`~concurrent.futures.ThreadPoolExecutor` — batch
  fan-outs reuse one set of worker threads instead of building and
  tearing down a pool per call.

Determinism is unchanged: every run still gets its own freshly built,
identically-seeded pipeline, and pooled engines are rebound and fully
re-initialised per lease, so session runs are bit-identical to one-shot
runs (pinned by ``tests/api/test_session.py``, including the
concurrent-lease case).

The module-level facade verbs delegate to a process-wide
:func:`default_session`, so plain ``api.detect_batch(...)`` calls
amortise engine setup automatically.

Examples
--------
>>> import repro.api as api
>>> from repro.graphs import ring_of_cliques
>>> graphs = [ring_of_cliques(3, 5)[0] for _ in range(3)]
>>> spec = {"solver": "greedy", "n_communities": 3, "seed": 0}
>>> with api.Session() as session:
...     artifacts = session.detect_batch(graphs, spec, max_workers=2)
...     [a.index for a in artifacts]
[0, 1, 2]
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Sequence

from repro.api import runner
from repro.api.spec import RunArtifact
from repro.exceptions import ReproError
from repro.qhd.pool import EnginePool


class SessionError(ReproError):
    """Raised for invalid session usage (e.g. running after close)."""


def _default_width() -> int:
    return min(8, os.cpu_count() or 1)


class Session:
    """A reusable run context amortising per-run setup across calls.

    Parameters
    ----------
    max_workers:
        Width of the session's persistent thread pool (and the default
        fan-out of :meth:`detect_batch` / :meth:`solve_batch`).
        ``None`` sizes it to ``min(8, cpu_count)``.
    max_idle_engines:
        Idle evolution engines kept per distinct run shape in the
        session's engine pool (see
        :class:`repro.qhd.pool.EnginePool`).
    pooling:
        ``False`` disables engine pooling entirely — every run
        constructs fresh engines, exactly like the pre-session code
        path.  Useful for A/B benchmarking the pool itself.

    Examples
    --------
    >>> import repro.api as api
    >>> from repro.graphs import ring_of_cliques
    >>> graph, _ = ring_of_cliques(3, 5)
    >>> session = api.Session()
    >>> spec = {"solver": "greedy", "n_communities": 3, "seed": 0}
    >>> a = session.detect(graph, spec)
    >>> b = session.detect(graph, spec)  # seeded: identical result
    >>> bool((a.result.labels == b.result.labels).all())
    True
    >>> session.close()
    """

    def __init__(
        self,
        max_workers: int | None = None,
        max_idle_engines: int = 4,
        pooling: bool = True,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise SessionError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self._max_workers = (
            _default_width() if max_workers is None else int(max_workers)
        )
        self._engine_pool = (
            EnginePool(max_idle_per_key=max_idle_engines) if pooling else None
        )
        self._executor: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self._closed = False
        self._runs = 0

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def engine_pool(self) -> EnginePool | None:
        """The session's engine pool (``None`` when pooling is off)."""
        return self._engine_pool

    @property
    def max_workers(self) -> int:
        """Width of the persistent thread pool."""
        return self._max_workers

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def stats(self) -> dict[str, Any]:
        """Run counters plus the engine pool's counters (JSON-ready)."""
        with self._lock:
            runs = self._runs
        return {
            "runs": runs,
            "max_workers": self._max_workers,
            "engine_pool": (
                None
                if self._engine_pool is None
                else self._engine_pool.stats()
            ),
        }

    def close(self) -> None:
        """Shut the thread pool down and drop every idle engine.

        Idempotent; further run calls raise :class:`SessionError`.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        if self._engine_pool is not None:
            self._engine_pool.clear()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return (
            f"Session(max_workers={self._max_workers}, "
            f"pooling={self._engine_pool is not None}, {state})"
        )

    # ------------------------------------------------------------------
    # Run verbs
    # ------------------------------------------------------------------
    def detect(self, graph: Any, spec: Any) -> RunArtifact:
        """Run one detection spec on ``graph`` (see :func:`repro.api.detect`)."""
        self._check_open()
        artifact = runner._detect_one(
            graph, runner._spec_of(spec), 0, engine_pool=self._engine_pool
        )
        self._count(1)
        return artifact

    def solve(self, model: Any, spec: Any) -> RunArtifact:
        """Run one solve spec on ``model`` (see :func:`repro.api.solve`)."""
        self._check_open()
        artifact = runner._solve_one(
            model, runner._spec_of(spec), 0, engine_pool=self._engine_pool
        )
        self._count(1)
        return artifact

    def detect_batch(
        self,
        graphs: Sequence[Any],
        spec: Any,
        max_workers: int | None = None,
    ) -> list[RunArtifact]:
        """Fan one detection spec over many graphs, order-preserving.

        Every graph gets its own freshly built, identically-seeded
        detector (batch ≡ sequence of single runs); the session's
        engine pool lets same-shape runs share evolution engines and
        its persistent thread pool absorbs the fan-out.
        """
        return self._run_batch(
            runner._detect_one, graphs, spec, max_workers
        )

    def solve_batch(
        self,
        models: Sequence[Any],
        spec: Any,
        max_workers: int | None = None,
    ) -> list[RunArtifact]:
        """Fan one solve spec over many QUBO models, order-preserving.

        The solve-side counterpart of :meth:`detect_batch`: each model
        gets a freshly built, identically-seeded solver, so the batch
        reproduces the corresponding sequence of single :meth:`solve`
        calls for any worker count.
        """
        return self._run_batch(
            runner._solve_one, models, spec, max_workers
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise SessionError("session is closed")

    def _count(self, n: int) -> None:
        with self._lock:
            self._runs += n

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._closed:
                raise SessionError("session is closed")
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="repro-session",
                )
            return self._executor

    def _run_batch(self, run_one, inputs, spec, max_workers) -> list:
        self._check_open()
        spec = runner._spec_of(spec)
        inputs = list(inputs)
        width = self._max_workers if max_workers is None else max_workers
        width = max(1, min(int(width), len(inputs) or 1))
        pool = self._engine_pool
        if width <= 1 or len(inputs) <= 1:
            results = [
                run_one(item, spec, index, engine_pool=pool)
                for index, item in enumerate(inputs)
            ]
            self._count(len(results))
            return results
        # The persistent executor is sized once per session.  A
        # narrower request is honoured with a semaphore bounding
        # concurrent runs; a *wider* one gets a temporary pool for the
        # call so the requested width is honoured exactly (results are
        # deterministic either way — this only shapes throughput).
        temporary = None
        gate = None
        if width > self._max_workers:
            temporary = ThreadPoolExecutor(
                max_workers=width, thread_name_prefix="repro-batch"
            )
            executor = temporary
        else:
            executor = self._ensure_executor()
            if width < self._max_workers:
                gate = threading.BoundedSemaphore(width)

        def task(item, index):
            if gate is None:
                return run_one(item, spec, index, engine_pool=pool)
            with gate:
                return run_one(item, spec, index, engine_pool=pool)

        try:
            futures = [
                executor.submit(task, item, index)
                for index, item in enumerate(inputs)
            ]
            results = [future.result() for future in futures]
        finally:
            if temporary is not None:
                temporary.shutdown(wait=True)
        self._count(len(results))
        return results


# ----------------------------------------------------------------------
# The process-wide default session behind the module-level verbs
# ----------------------------------------------------------------------
_default_session: Session | None = None
_default_lock = threading.Lock()


def default_session() -> Session:
    """The lazily created process-wide session.

    Backs the module-level :func:`repro.api.detect` /
    :func:`repro.api.solve` / :func:`repro.api.detect_batch` /
    :func:`repro.api.solve_batch` verbs, so plain facade calls amortise
    engine setup and thread-pool spin-up without any session plumbing.

    Examples
    --------
    >>> import repro.api as api
    >>> api.default_session() is api.default_session()
    True
    """
    global _default_session
    with _default_lock:
        if _default_session is None or _default_session.closed:
            _default_session = Session()
        return _default_session
