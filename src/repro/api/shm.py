"""Shared-memory zero-copy wire format for process-mode batches.

This is the **blessed wire module**: the only place in the library
allowed to touch :mod:`multiprocessing.shared_memory` (enforced by the
REP007 lint rule).  It turns the array bundles the process executor
already ships — :meth:`repro.graphs.Graph.to_arrays` tuples and
``QuboModel``/``SparseQuboModel`` ``to_arrays()`` dicts — into
shared-memory *segments* plus tiny picklable *descriptors*:

* the batch submitter (:class:`ShmBatchWriter`) copies each unique
  input's arrays into shared memory **once per batch** — bundles are
  bump-allocated into a few slab segments (:data:`SLAB_BYTES` each;
  oversize bundles get a dedicated segment) so per-bundle cost is one
  ``memcpy``, not a segment creation, and repeated inputs are deduped
  by identity to reuse the already-written bytes — and ships only
  ``(segment, dtype, shape, offset)`` descriptors with each chunk, so
  per-task submit cost no longer grows with graph size;
* the worker (:class:`ShmChunkReader`) attaches the named segments and
  reconstructs the payloads as **read-only numpy views** over the
  shared buffer — no copy, and downstream ``from_arrays`` reconstruction
  skips re-canonicalisation exactly as it does on the pickle wire;
* cleanup is deterministic: the creator unlinks every segment in a
  ``finally`` once the batch completes (success or not), workers close
  their attachments on chunk exit, and :meth:`repro.api.Session.close`
  sweeps any straggler writers.

Segment bookkeeping rides on the stdlib resource tracker.  With the
``fork`` start context (the executor's preference, and the only one on
this code path under Linux) the parent and its workers share one
tracker process, so the create-side register and unlink-side unregister
balance exactly and nothing is reported leaked.  Spawn-based contexts
give each worker its own tracker, which may log shutdown warnings for
attach-only segments — harmless (the names are already unlinked) but
noisy; fork avoids it entirely.

Byte accounting is exact and allocation-free: ``bytes_shipped`` counts
array bytes physically serialised into task payloads (zero for
shm-encoded inputs — only descriptors travel), ``bytes_referenced``
counts array bytes made reachable through segments (counted once per
use, so deduped reuse shows up as referenced-but-not-recopied).
"""

from __future__ import annotations

import threading
from multiprocessing import shared_memory
from types import TracebackType
from typing import Any

import numpy as np

from repro.exceptions import ReproError

#: Field offsets inside a segment are rounded up to this alignment so
#: every reconstructed view is at least cache-line aligned regardless of
#: the dtypes preceding it in the segment.
ALIGNMENT = 64

#: Wire tags with an array-bundle shared-memory form.  ``"object"``
#: payloads (arbitrary pickled fallbacks) never go through a segment.
SHM_TAGS = ("graph", "qubo")

#: Slab segment size.  Bundles are bump-allocated into slabs of this
#: many bytes so a batch of small graphs costs a handful of segment
#: creations total instead of one per input; bundles larger than a slab
#: get a dedicated right-sized segment.
SLAB_BYTES = 4 << 20


class ShmWireError(ReproError):
    """Raised for malformed shared-memory wire descriptors/payloads."""


def _align(offset: int) -> int:
    return -(-offset // ALIGNMENT) * ALIGNMENT


def split_payload(
    tag: str, payload: Any
) -> tuple[list[tuple[str, np.ndarray]], dict[str, Any]]:
    """Split a wire payload into named array fields plus scalar meta.

    The inverse of :func:`join_payload`.  ``graph`` payloads are the
    ``(n_nodes, edge_u, edge_v, edge_w)`` tuples of
    :meth:`repro.graphs.Graph.to_arrays`; ``qubo`` payloads are the
    ``to_arrays()`` dicts of either QUBO backend (array values become
    fields, everything else — ``kind``, ``n``, ``offset``,
    ``factor_rows`` — stays inline meta).  Field order is deterministic
    so descriptors are reproducible.
    """
    if tag == "graph":
        n_nodes, edge_u, edge_v, edge_w = payload
        fields = [
            ("edge_u", np.asarray(edge_u)),
            ("edge_v", np.asarray(edge_v)),
            ("edge_w", np.asarray(edge_w)),
        ]
        return fields, {"n_nodes": int(n_nodes)}
    if tag == "qubo":
        fields = []
        meta: dict[str, Any] = {}
        for key in sorted(payload):
            value = payload[key]
            if isinstance(value, np.ndarray):
                fields.append((key, value))
            else:
                meta[key] = value
        return fields, meta
    raise ShmWireError(
        f"wire tag {tag!r} has no shared-memory form "
        f"(expected one of {list(SHM_TAGS)})"
    )


def join_payload(
    tag: str, fields: dict[str, np.ndarray], meta: dict[str, Any]
) -> Any:
    """Reassemble a wire payload from array fields plus scalar meta."""
    if tag == "graph":
        return (
            meta["n_nodes"],
            fields["edge_u"],
            fields["edge_v"],
            fields["edge_w"],
        )
    if tag == "qubo":
        bundle: dict[str, Any] = dict(meta)
        bundle.update(fields)
        return bundle
    raise ShmWireError(
        f"wire tag {tag!r} has no shared-memory form "
        f"(expected one of {list(SHM_TAGS)})"
    )


def payload_nbytes(tag: str, payload: Any) -> int:
    """Array bytes carried by one wire payload (0 for non-array tags)."""
    if tag not in SHM_TAGS:
        return 0
    fields, _ = split_payload(tag, payload)
    return sum(int(array.nbytes) for _, array in fields)


class ShmBatchWriter:
    """Creator side: pack wire payloads into shared-memory slabs.

    One writer serves one batch submission.  :meth:`encode`
    bump-allocates a payload's arrays into the current slab segment
    (creating a new slab when the bundle does not fit, or a dedicated
    segment when it exceeds a whole slab; a repeated ``key`` reuses the
    already-written bytes) and returns the picklable descriptor to ship
    instead of the arrays.  :meth:`close` closes *and unlinks* every
    segment the writer created — call it in a ``finally`` once every
    chunk of the batch has completed, or let the context-manager form
    do it.

    The writer is not thread-safe for concurrent :meth:`encode` calls
    (batches encode inputs from the submitting thread only), but
    :meth:`close` is idempotent and safe to call from the sweeping
    session under its own lock.
    """

    def __init__(self, slab_bytes: int = SLAB_BYTES) -> None:
        self._slab_bytes = max(int(slab_bytes), ALIGNMENT)
        self._segments: list[shared_memory.SharedMemory] = []
        self._slab: shared_memory.SharedMemory | None = None
        self._slab_cursor = 0
        self._by_key: dict[int, tuple[dict[str, Any], int]] = {}
        self._close_lock = threading.Lock()
        self._closed = False
        self.segments_created = 0
        self.bundles_encoded = 0
        self.bundles_reused = 0
        self.bytes_shipped = 0
        self.bytes_referenced = 0

    def _new_segment(self, size: int) -> shared_memory.SharedMemory:
        """Create a segment and register it for cleanup, leak-free."""
        segment = shared_memory.SharedMemory(create=True, size=size)
        registered = False
        try:
            self._segments.append(segment)
            registered = True
        finally:
            if not registered:
                # The segment never reached the writer's cleanup list;
                # unlink it here so a failed create cannot leak it.
                segment.close()
                segment.unlink()
        self.segments_created += 1
        return segment

    def _allocate(
        self, nbytes: int
    ) -> tuple[shared_memory.SharedMemory, int]:
        """Reserve ``nbytes``; return ``(segment, base offset)``.

        Oversize bundles get a dedicated right-sized segment; everything
        else bump-allocates into the current slab, rolling to a fresh
        slab when the remainder is too small.
        """
        if nbytes > self._slab_bytes:
            return self._new_segment(max(1, nbytes)), 0
        base = _align(self._slab_cursor)
        if self._slab is None or base + nbytes > self._slab_bytes:
            self._slab = self._new_segment(self._slab_bytes)
            base = 0
        self._slab_cursor = base + nbytes
        return self._slab, base

    def encode(
        self, tag: str, payload: Any, key: int | None = None
    ) -> dict[str, Any]:
        """Write ``payload`` into shared memory; return its descriptor.

        ``key`` is the dedup handle (the submitter passes ``id(item)``,
        stable while the batch holds its inputs alive): encoding the
        same key again reuses the already-written bytes instead of
        copying the arrays a second time.
        """
        if self._closed:
            raise ShmWireError("ShmBatchWriter is closed")
        if key is not None and key in self._by_key:
            descriptor, nbytes = self._by_key[key]
            self.bundles_reused += 1
            self.bytes_referenced += nbytes
            return descriptor
        fields, meta = split_payload(tag, payload)
        arrays: list[np.ndarray] = []
        relative: list[tuple[str, str, tuple[int, ...], int]] = []
        end = 0
        for name, array in fields:
            array = np.ascontiguousarray(array)
            offset = _align(end)
            relative.append((name, array.dtype.str, array.shape, offset))
            arrays.append(array)
            end = offset + array.nbytes
        segment, base = self._allocate(end)
        layout = [
            (name, dtype, shape, base + offset)
            for name, dtype, shape, offset in relative
        ]
        for (_, _, _, offset), array in zip(layout, arrays):
            view: np.ndarray = np.ndarray(
                array.shape,
                dtype=array.dtype,
                buffer=segment.buf,
                offset=offset,
            )
            view[...] = array
        descriptor = {
            "segment": segment.name,
            "tag": tag,
            "fields": layout,
            "meta": meta,
        }
        nbytes = sum(int(array.nbytes) for array in arrays)
        self.bundles_encoded += 1
        self.bytes_referenced += nbytes
        if key is not None:
            self._by_key[key] = (descriptor, nbytes)
        return descriptor

    def counters(self) -> dict[str, int]:
        """The writer's wire counters (merged into session stats)."""
        return {
            "segments_created": self.segments_created,
            "bundles_encoded": self.bundles_encoded,
            "bundles_reused": self.bundles_reused,
            "bytes_shipped": self.bytes_shipped,
            "bytes_referenced": self.bytes_referenced,
        }

    @property
    def closed(self) -> bool:
        return self._closed

    def segment_names(self) -> list[str]:
        """Names of the live segments this writer created (for tests)."""
        return [segment.name for segment in self._segments]

    def close(self) -> None:
        """Close and unlink every segment this writer created.

        Idempotent.  Runs under its own lock so the owning session's
        straggler sweep and the batch's ``finally`` can race safely.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            segments, self._segments = self._segments, []
            self._slab = None
        for segment in segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - creator views died
                pass
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._by_key.clear()

    def __enter__(self) -> "ShmBatchWriter":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()


class ShmChunkReader:
    """Worker side: attach segments, hand out read-only views.

    One reader serves one chunk.  :meth:`decode` attaches the
    descriptor's segment (cached per name, so many inputs sharing one
    deduped segment attach it once) and rebuilds the ``(tag, payload)``
    wire pair with every array a writeable=False view over the shared
    buffer.  On exit the reader closes every attachment; a view that
    outlived the chunk merely defers the close to process exit (the
    creator's unlink has already removed the name, so nothing persists
    either way).
    """

    def __init__(self) -> None:
        self._attached: dict[str, shared_memory.SharedMemory] = {}

    def decode(self, descriptor: dict[str, Any]) -> tuple[str, Any]:
        """Reconstruct the ``(tag, payload)`` pair behind ``descriptor``."""
        name = descriptor["segment"]
        segment = self._attached.get(name)
        if segment is None:
            try:
                segment = shared_memory.SharedMemory(name=name)
            except FileNotFoundError as error:
                raise ShmWireError(
                    f"shared-memory segment {name!r} is gone; the "
                    f"submitting session closed it before this chunk ran"
                ) from error
            self._attached[name] = segment
        fields: dict[str, np.ndarray] = {}
        for field_name, dtype, shape, offset in descriptor["fields"]:
            view: np.ndarray = np.ndarray(
                tuple(shape),
                dtype=np.dtype(dtype),
                buffer=segment.buf,
                offset=offset,
            )
            view.flags.writeable = False
            fields[field_name] = view
        return descriptor["tag"], join_payload(
            descriptor["tag"], fields, descriptor["meta"]
        )

    def close(self) -> None:
        """Close every attached segment (views permitting)."""
        attached, self._attached = self._attached, {}
        for segment in attached.values():
            try:
                segment.close()
            except BufferError:
                # A run artifact still references a view; the mapping
                # is released when it is collected, and the name is
                # already unlinked by the creator — nothing leaks.
                pass

    def __enter__(self) -> "ShmChunkReader":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()


__all__ = [
    "ALIGNMENT",
    "SHM_TAGS",
    "SLAB_BYTES",
    "ShmBatchWriter",
    "ShmChunkReader",
    "ShmWireError",
    "join_payload",
    "payload_nbytes",
    "split_payload",
]
