"""The unified public facade of the library.

``repro.api`` is the supported entry point for driving any
solver/detector combination declaratively:

* :data:`SOLVERS` / :data:`DETECTORS` — plugin registries every solver
  and detector self-registers into (``available()``, ``create(name,
  **cfg)``),
* :class:`RunSpec` — one JSON-serialisable dict describing a whole run
  (detector + solver + configs + ``n_communities`` + seed),
* :func:`detect` / :func:`solve` / :func:`detect_batch` /
  :func:`solve_batch` — execute a spec on a graph, a QUBO model, or a
  batch of either (thread-pool fan-out), returning :class:`RunArtifact`
  objects that serialise the spec, result, timings and seed back to
  JSON,
* :class:`Session` — a reusable run context owning a pooled-engine
  cache and a persistent worker thread pool; the module-level verbs
  delegate to the process-wide :func:`default_session`, so repeated
  and batched runs amortise per-run setup automatically (results stay
  bit-identical to one-shot runs).

Example::

    import repro.api as api

    spec = {
        "detector": "qhd",
        "solver": "simulated-annealing",
        "solver_config": {"n_sweeps": 100},
        "n_communities": 4,
        "seed": 7,
    }
    artifact = api.detect(graph, spec)
    print(artifact.result.modularity, artifact.to_json())

The heavy runner module is loaded lazily so that implementation modules
can import the registries without a circular import.
"""

from __future__ import annotations

from typing import Any

from repro.api.config import ConfigError, Configurable
from repro.api.registry import (
    DETECTORS,
    SOLVERS,
    Registry,
    RegistryError,
    resolve_solver,
    solver_to_spec,
)
from repro.api.spec import RunArtifact, RunSpec, SpecError

_RUNNER_EXPORTS = (
    "build_detector",
    "build_solver",
    "detect",
    "detect_batch",
    "solve",
    "solve_batch",
)

_SESSION_EXPORTS = (
    "Session",
    "SessionError",
    "default_session",
    "session_scope",
)

_STREAM_EXPORTS = ("detect_stream",)

_AIO_EXPORTS = ("AsyncSession",)

__all__ = [
    "Configurable",
    "ConfigError",
    "Registry",
    "RegistryError",
    "SOLVERS",
    "DETECTORS",
    "resolve_solver",
    "solver_to_spec",
    "RunSpec",
    "RunArtifact",
    "SpecError",
    *_RUNNER_EXPORTS,
    *_SESSION_EXPORTS,
    *_STREAM_EXPORTS,
    *_AIO_EXPORTS,
]


def __getattr__(name: str) -> Any:
    if name in _RUNNER_EXPORTS:
        from repro.api import runner

        return getattr(runner, name)
    if name in _SESSION_EXPORTS:
        from repro.api import session

        return getattr(session, name)
    if name in _STREAM_EXPORTS:
        from repro.api import stream

        return getattr(stream, name)
    if name in _AIO_EXPORTS:
        from repro.api import aio

        return getattr(aio, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)
