"""Plugin registries mapping public names to solver/detector classes.

Every QUBO solver and community detector self-registers under its public
name via the decorator form::

    from repro.api.registry import SOLVERS

    @SOLVERS.register("qhd")
    class QhdSolver(QuboSolver):
        ...

so there is exactly one name table in the library — the CLI, the
experiments and the batch runner all resolve names through
:data:`SOLVERS` / :data:`DETECTORS` instead of maintaining private
solver dicts.  Registries populate lazily: the first lookup imports the
implementing modules, so ``repro.api`` stays import-cheap.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterator

from repro.api.config import Configurable
from repro.exceptions import ReproError


class RegistryError(ReproError):
    """Raised for unknown names or conflicting registrations."""


class Registry:
    """A name -> class table with decorator registration.

    Parameters
    ----------
    kind:
        Human-readable entry kind (``"solver"``, ``"detector"``) used in
        error messages.
    populate:
        Zero-argument callable importing the modules whose classes
        register themselves; invoked once, on first lookup.

    Examples
    --------
    >>> from repro.api import SOLVERS
    >>> "tabu" in SOLVERS
    True
    >>> solver = SOLVERS.create("tabu", n_iterations=500)
    >>> solver.n_iterations
    500
    """

    def __init__(
        self, kind: str, populate: Callable[[], None] | None = None
    ) -> None:
        self.kind = kind
        self._entries: dict[str, type] = {}
        self._populate = populate
        self._populated = populate is None
        self._lock = threading.RLock()

    def _ensure_populated(self) -> None:
        if self._populated:
            return
        # The RLock makes concurrent first lookups (e.g. detect_batch
        # worker threads) wait for one full population instead of
        # reading a half-filled table.  Re-entrant lookups during the
        # imports run on the populating thread, so they re-acquire the
        # lock and fall through on the cleared callback; it is restored
        # on failure so the next lookup retries instead of misreporting
        # an empty registry.
        with self._lock:
            populate = self._populate
            if self._populated or populate is None:
                return
            self._populate = None
            try:
                populate()
            except BaseException:
                self._populate = populate
                raise
            self._populated = True

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name: str) -> Callable[[type], type]:
        """Class decorator registering ``cls`` under ``name``."""

        def decorate(cls: type) -> type:
            existing = self._entries.get(name)
            if existing is not None and existing is not cls:
                raise RegistryError(
                    f"duplicate {self.kind} registration {name!r}: "
                    f"{existing.__name__} is already registered"
                )
            self._entries[name] = cls
            return cls

        return decorate

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def available(self) -> tuple[str, ...]:
        """Sorted public names of every registered class.

        Examples
        --------
        >>> from repro.api import SOLVERS
        >>> "simulated-annealing" in SOLVERS.available()
        True
        """
        self._ensure_populated()
        return tuple(sorted(self._entries))

    def get(self, name: str) -> type:
        """The class registered under ``name``."""
        self._ensure_populated()
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(self.available()) or "<none>"
            raise RegistryError(
                f"unknown {self.kind} {name!r}; available: {known}"
            ) from None

    def create(self, name: str, **config: Any) -> Any:
        """Instantiate the class registered under ``name``.

        ``config`` goes through the class's ``from_config``, so unknown
        keys are rejected with the list of known ones.

        Examples
        --------
        >>> from repro.api import SOLVERS
        >>> SOLVERS.create("greedy", n_restarts=2).n_restarts
        2
        """
        return self.get(name).from_config(config)

    def __contains__(self, name: object) -> bool:
        self._ensure_populated()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.available())

    def __len__(self) -> int:
        self._ensure_populated()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = ", ".join(self.available())
        return f"Registry(kind={self.kind!r}, entries=[{names}])"


def _populate_solvers() -> None:
    import repro.qhd.solver  # noqa: F401
    import repro.solvers  # noqa: F401


def _populate_detectors() -> None:
    import repro.community  # noqa: F401


SOLVERS = Registry("solver", populate=_populate_solvers)
"""All QUBO solvers, by public name.

The one solver name table in the library; the CLI, the experiments and
:func:`repro.api.build_solver` all resolve through it.

Examples
--------
>>> from repro.api import SOLVERS
>>> sorted(set(SOLVERS.available()) & {"qhd", "tabu"})
['qhd', 'tabu']
>>> SOLVERS.create("simulated-annealing", n_sweeps=50).n_sweeps
50
"""

DETECTORS = Registry("detector", populate=_populate_detectors)
"""All community detectors, by public name.

Examples
--------
>>> from repro.api import DETECTORS
>>> "qhd" in DETECTORS.available()
True
>>> type(DETECTORS.create("qhd")).__name__
'QhdCommunityDetector'
"""

# doctest never sees the attribute docstrings above (bare string
# literals after an assignment are discarded at runtime), so their
# examples are registered explicitly for tests/test_package.py.
__test__ = {
    "SOLVERS": """
        >>> from repro.api import SOLVERS
        >>> sorted(set(SOLVERS.available()) & {"qhd", "tabu"})
        ['qhd', 'tabu']
        >>> SOLVERS.create("simulated-annealing", n_sweeps=50).n_sweeps
        50
        """,
    "DETECTORS": """
        >>> from repro.api import DETECTORS
        >>> "qhd" in DETECTORS.available()
        True
        >>> type(DETECTORS.create("qhd")).__name__
        'QhdCommunityDetector'
        """,
}


def resolve_solver(value: Any) -> Any:
    """Normalise a solver reference into a solver instance (or ``None``).

    Accepts ``None`` (pass through), an already-built solver instance, a
    registered name string, or a spec dict ``{"name": ..., "config":
    {...}}``.  This is the coercion detectors apply to their ``solver``
    config entry, so one JSON spec can describe a whole pipeline.
    """
    if value is None:
        return None
    if isinstance(value, str):
        return SOLVERS.create(value)
    if isinstance(value, dict):
        unknown = sorted(set(value) - {"name", "config"})
        if unknown:
            raise RegistryError(
                f"solver spec supports keys 'name' and 'config', "
                f"got unknown keys {unknown}"
            )
        if "name" not in value:
            raise RegistryError("solver spec dict requires a 'name' key")
        return SOLVERS.create(value["name"], **(value.get("config") or {}))
    return value


def solver_to_spec(solver: Any) -> Any:
    """Inverse of :func:`resolve_solver` for registered solver instances.

    Lowers a solver built from the registry back into its ``{"name":
    ..., "config": {...}}`` spec dict so detector configs stay
    JSON-serialisable; ``None`` and unregistered instances pass through.
    """
    if solver is None:
        return None
    name = getattr(solver, "name", None)
    if (
        isinstance(name, str)
        and name in SOLVERS
        and type(solver) is SOLVERS.get(name)
    ):
        return {"name": name, "config": solver.to_config()}
    return solver


class SolverConfigurable(Configurable):
    """Configurable whose ``solver`` config entry is a solver reference.

    The shared config behaviour of every community detector:
    ``from_config`` coerces the ``solver`` entry through
    :func:`resolve_solver` (name string, ``{"name", "config"}`` spec
    dict, live instance or ``None``) plus any ``_nested_configs``
    entries from their dict form, and ``to_config`` lowers the solver
    back to a JSON-safe spec dict via :func:`solver_to_spec`.
    """

    #: Config key -> Configurable class; dict values for these keys are
    #: coerced through the class's ``from_config``.
    _nested_configs: dict[str, type] = {}

    @classmethod
    def _coerce_config(cls, config: dict[str, Any]) -> dict[str, Any]:
        config["solver"] = resolve_solver(config.get("solver"))
        for key, nested_cls in cls._nested_configs.items():
            value = config.get(key)
            if isinstance(value, dict):
                config[key] = nested_cls.from_config(value)
        return config

    def to_config(self) -> dict[str, Any]:
        config = super().to_config()
        config["solver"] = solver_to_spec(config["solver"])
        return config
