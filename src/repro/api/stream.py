"""Streaming detection over dynamic graphs (``api.detect_stream``).

A stream is a sequence of **edge-event batches** applied to an evolving
graph; after every batch the detection spec is re-run on the updated
graph and one :class:`repro.api.RunArtifact` is yielded.  Three pieces
of state stay warm across events instead of being rebuilt per batch:

* the **graph** advances through :meth:`repro.graphs.Graph.apply_updates`
  (vectorized CSR rebuild from canonical edge arrays, never a Python
  edge loop),
* the **QUBO** advances through
  :class:`repro.qubo.CommunityQuboPatcher` — per batch one coefficient
  patch of the touched terms, never a from-scratch
  :func:`repro.qubo.build_community_qubo`,
* the **flip-delta state** advances through
  :meth:`repro.qubo.FlipDeltaState.repatch` — the maintained local
  fields are re-materialised against the patched model while the
  tracked assignment (the previous partition, one-hot) is kept, so a
  greedy single-flip descent polishes the previous solution in QUBO
  space before the detector runs.

The polished labels are handed to the detector as
``initial_partition`` (see :meth:`DirectQuboDetector.detect`), so the
QUBO solve competes against the warm-started candidate by modularity.
Detectors without a warm-start knob (classical baselines) simply run
cold on each updated graph.

Event format
------------
Each element of ``updates`` is one batch: an iterable of
``(op, u, v[, w])`` tuples or ``{"op", "u", "v", "w"}`` dicts with
``op`` in ``insert`` / ``delete`` / ``reweight`` — exactly the
:meth:`Graph.apply_updates` contract (deletes before reweights before
inserts within a batch; duplicate inserts merge by summation).

Determinism
-----------
The stream runs strictly sequentially (batch ``i+1`` needs batch
``i``'s partition), every per-batch detector is freshly built from the
same seeded spec, and the QUBO-space descent is a deterministic
lowest-index-ties argmin walk — so a seeded stream is bit-reproducible
across runs, sessions and executor backends (pinned by the
``stream_*`` golden traces).

Examples
--------
>>> import repro.api as api
>>> from repro.graphs import ring_of_cliques
>>> graph, _ = ring_of_cliques(3, 5)
>>> spec = {"solver": "greedy", "n_communities": 3, "seed": 0}
>>> batches = [[("insert", 0, 7)], [("delete", 0, 7)]]
>>> artifacts = list(api.detect_stream(graph, batches, spec))
>>> [a.index for a in artifacts]
[0, 1]
>>> artifacts[1].result.metadata["stream_touched_nodes"]
2
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

import numpy as np

from repro.api import runner
from repro.api.spec import RunArtifact, RunSpec, SpecError

#: Safety cap on greedy descent steps per event batch, as a multiple
#: of the number of QUBO variables.  The descent is monotone (only
#: strictly improving flips are accepted), so this bounds the rare
#: long tail without changing typical behaviour.
_MAX_DESCENT_FLIPS = 2


class _WarmModelState:
    """The incrementally maintained QUBO-space state of one stream.

    Owns the :class:`CommunityQuboPatcher` (built from one full
    :func:`build_community_qubo` on the initial graph — the only
    from-scratch model build of the stream) and, once a partition has
    been observed, a :class:`FlipDeltaState` anchored at its one-hot
    encoding.  Per event batch the model is patched, the state is
    repatched, and a greedy descent polishes the tracked assignment.
    """

    def __init__(self, graph: Any, n_communities: int) -> None:
        from repro.qubo import CommunityQuboPatcher, build_community_qubo

        self._k = int(n_communities)
        self._qubo: Any = build_community_qubo(graph, self._k)
        self._patcher: Any = CommunityQuboPatcher(self._qubo)
        self._state: Any | None = None

    def release(self) -> None:
        """Drop the patcher / model / flip-delta references.

        Stream teardown: the QUBO, the patcher's coefficient scratch
        and the flip-delta state's maintained fields are the stream's
        warm memory — O(n·k) plus coupling-nnz arrays each.  Called
        from the generator's ``finally`` so an abandoned stream (a
        consumer that ``break``s, or an HTTP client that disconnects)
        frees them deterministically instead of keeping them alive as
        long as the suspended generator object exists.
        """
        self._qubo = None
        self._patcher = None
        self._state = None

    def advance(self, graph: Any, touched: np.ndarray) -> None:
        """Patch the model to ``graph`` and re-materialise the state.

        The patch rewrites only the coefficient groups the batch can
        have changed (see :meth:`CommunityQuboPatcher.update`); the
        single full-field ``repatch`` is required because every batch
        moves the total weight ``2m``, which rescales all modularity
        couplings and null-model projections at once.
        """
        self._qubo = self._patcher.update(graph, touched_nodes=touched)
        if self._state is not None:
            self._state.repatch(self._qubo.model)

    def warm_labels(self, graph: Any) -> np.ndarray | None:
        """Greedy QUBO-space polish of the tracked assignment.

        Deterministic steepest single-flip descent on the maintained
        flip deltas (lowest index wins ties), decoded/repaired back to
        community labels.  ``None`` until a partition is tracked.
        """
        if self._state is None:
            return None
        from repro.qubo import decode_assignment

        state = self._state
        budget = _MAX_DESCENT_FLIPS * state.n_variables
        for _ in range(budget):
            index, delta = state.best_flip()
            if delta >= 0.0:
                break
            state.flip(index)
        return decode_assignment(
            state.x, self._qubo.variable_map, graph=graph
        )

    def track(self, labels: np.ndarray) -> None:
        """Move the tracked assignment to ``labels`` by incremental flips.

        Labels outside ``0..k-1`` (possible with detectors that grow
        their own label space) cannot be one-hot encoded; the
        trajectory restarts from the next in-range partition instead.
        """
        from repro.qubo import FlipDeltaState, labels_to_one_hot

        arr = np.asarray(labels)
        if arr.size and (int(arr.min()) < 0 or int(arr.max()) >= self._k):
            self._state = None
            return
        target = labels_to_one_hot(arr, self._k)
        if self._state is None:
            self._state = FlipDeltaState(self._qubo.model, target)
            return
        for index in np.nonzero(self._state.x != target)[0].tolist():
            self._state.flip(int(index))


def detect_stream(
    graph: Any,
    updates: Iterable[Any],
    spec: RunSpec | dict[str, Any] | str,
    *,
    session: Any | None = None,
    warm_start: bool = True,
) -> Iterator[RunArtifact]:
    """Run one detection spec over an evolving graph, batch by batch.

    Parameters
    ----------
    graph:
        The initial :class:`repro.graphs.Graph`; never mutated (each
        batch produces a fresh graph via ``apply_updates``).
    updates:
        Iterable of edge-event batches (see the module docstring for
        the event format).  May be a lazy generator; batches are
        consumed one at a time.
    spec:
        The detection :class:`RunSpec` (or dict / JSON text) re-run
        after every batch; ``n_communities`` is required.
    session:
        A :class:`repro.api.Session` whose engine pool serves every
        per-batch QHD solve; ``None`` uses the process-wide
        :func:`repro.api.default_session`.
    warm_start:
        ``True`` (default) maintains the incremental QUBO + flip-delta
        state and warm-starts every detector run with the polished
        previous partition; ``False`` runs each batch cold (the graph
        still advances incrementally).

    Yields
    ------
    RunArtifact:
        One per event batch, ``index`` = batch position.  The result's
        metadata gains ``stream_batch`` and ``stream_touched_nodes``
        (endpoint count of the batch's events).

    Examples
    --------
    >>> import repro.api as api
    >>> from repro.graphs import ring_of_cliques
    >>> graph, _ = ring_of_cliques(3, 4)
    >>> spec = {"solver": "greedy", "n_communities": 3, "seed": 1}
    >>> updates = [[("insert", 0, 4, 2.0)], []]
    >>> [a.result.n_communities for a in
    ...  api.detect_stream(graph, updates, spec)]
    [3, 3]
    """
    resolved = runner._spec_of(spec)
    if resolved.n_communities is None:
        raise SpecError("spec.n_communities is required for detect_stream")
    if session is None:
        from repro.api.session import default_session

        session = default_session()
    return _stream(graph, updates, resolved, session, bool(warm_start))


def _stream(
    graph: Any,
    updates: Iterable[Any],
    spec: RunSpec,
    session: Any,
    warm_start: bool,
) -> Iterator[RunArtifact]:
    model_state = (
        _WarmModelState(graph, int(spec.n_communities))
        if warm_start
        else None
    )
    previous: np.ndarray | None = None
    # The finally is the stream's teardown contract: a consumer that
    # abandons the generator mid-stream (``break``, a dropped HTTP
    # connection, ``gen.close()``) triggers GeneratorExit here, and the
    # warm QUBO/patcher/flip-delta state is released deterministically
    # instead of living as long as the suspended generator object.
    try:
        for index, events in enumerate(updates):
            session._check_open()
            graph, touched = graph.apply_updates(events)
            warm: np.ndarray | None = None
            if model_state is not None:
                model_state.advance(graph, touched)
                warm = model_state.warm_labels(graph)
                if warm is None:
                    warm = previous
            artifact = runner._detect_one(
                graph,
                spec,
                index,
                engine_pool=session.engine_pool,
                initial_partition=warm,
            )
            session._count(1)
            labels = np.asarray(artifact.result.labels)
            artifact.result.metadata["stream_batch"] = index
            artifact.result.metadata["stream_touched_nodes"] = int(
                np.asarray(touched).size
            )
            if model_state is not None:
                model_state.track(labels)
            previous = labels
            yield artifact
    finally:
        if model_state is not None:
            model_state.release()
