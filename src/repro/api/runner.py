"""Spec execution: build components from the registries and run them.

This module implements the verbs of the ``repro.api`` facade:

* :func:`build_solver` / :func:`build_detector` — registry-backed
  construction with uniform ``seed`` / ``time_limit`` threading,
* :func:`detect` / :func:`solve` — execute one :class:`RunSpec` on one
  graph / QUBO model and return a :class:`RunArtifact`,
* :func:`detect_batch` / :func:`solve_batch` — fan one spec out over
  many graphs / models with a thread pool, preserving input order and
  per-input determinism (each input gets a freshly built, identically-
  seeded pipeline, so a batch run reproduces the corresponding sequence
  of single runs exactly).

The module-level verbs delegate to the process-wide
:class:`repro.api.Session` (:func:`repro.api.default_session`), which
owns the engine pool and the persistent worker threads; the private
``_detect_one`` / ``_solve_one`` helpers here are the session's
per-run execution core.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:
    from repro.api.session import Session
    from repro.api.shm import ShmChunkReader

from repro.api.registry import DETECTORS, SOLVERS, Registry
from repro.api.spec import RunArtifact, RunSpec, SpecError
from repro.qhd.pool import EnginePool, attach_engine_pool
from repro.utils.timer import Stopwatch


def _spec_of(spec: RunSpec | dict[str, Any] | str) -> RunSpec:
    """Accept a RunSpec, a spec dict, or JSON text interchangeably."""
    if isinstance(spec, RunSpec):
        return spec
    if isinstance(spec, dict):
        return RunSpec.from_dict(spec)
    if isinstance(spec, str):
        return RunSpec.from_json(spec)
    raise SpecError(
        f"spec must be a RunSpec, dict or JSON string, "
        f"got {type(spec).__name__}"
    )


def _build(
    registry: Registry,
    name: str,
    config: dict[str, Any],
    **overrides: Any,
) -> Any:
    """Create ``name`` from ``registry``, applying supported overrides.

    Overrides (``seed``, ``time_limit``, ...) are threaded into the
    config only when the target class accepts the key and the config
    does not already pin it; unsupported non-``None`` overrides trigger
    a warning instead of being silently dropped — the uniform behaviour
    the old per-call-site solver tables lacked.
    """
    cls = registry.get(name)
    fields = set(cls.config_fields())
    config = dict(config)
    for key, value in overrides.items():
        if value is None or key in config:
            continue
        if key in fields:
            config[key] = value
        else:
            warnings.warn(
                f"{registry.kind} {name!r} does not accept "
                f"{key!r}={value!r}; ignoring it",
                RuntimeWarning,
                stacklevel=3,
            )
    return cls.from_config(config)


def build_solver(
    name: str,
    config: dict[str, Any] | None = None,
    *,
    seed: int | None = None,
    time_limit: float | None = None,
    **extra: Any,
) -> Any:
    """Instantiate a registered solver with uniform knob threading.

    Examples
    --------
    >>> solver = build_solver("simulated-annealing", seed=0, time_limit=5.0)
    >>> solver.time_limit
    5.0
    """
    merged = {**(config or {}), **extra}
    return _build(SOLVERS, name, merged, seed=seed, time_limit=time_limit)


def build_detector(
    spec: RunSpec | dict[str, Any] | str,
) -> Any:
    """Instantiate the detector pipeline described by ``spec``.

    The spec's ``solver``/``solver_config`` become the detector's
    ``solver`` entry (unless ``detector_config`` already pins one), and
    the spec ``seed`` is threaded into both configs wherever accepted.

    Examples
    --------
    >>> detector = build_detector({
    ...     "detector": "qhd",
    ...     "solver": "greedy",
    ...     "seed": 3,
    ... })
    >>> detector.solver.name
    'greedy'
    """
    spec = _spec_of(spec)
    config = dict(spec.detector_config)
    seed = spec.seed
    if spec.solver is not None and "solver" not in config:
        solver_config = dict(spec.solver_config)
        if (
            seed is not None
            and "seed" not in solver_config
            and "seed" in SOLVERS.get(spec.solver).config_fields()
        ):
            solver_config["seed"] = seed
            # The seed was honoured by the solver; if the detector has
            # no seed knob of its own, don't warn that it was ignored.
            if "seed" not in DETECTORS.get(spec.detector).config_fields():
                seed = None
        config["solver"] = {"name": spec.solver, "config": solver_config}
    return _build(DETECTORS, spec.detector, config, seed=seed)


def _supports_warm_start(detector: Any) -> bool:
    """Whether ``detector.detect`` accepts ``initial_partition``.

    The QUBO detectors (direct/multilevel/qhd/adaptive) take the warm
    start; classical baselines (louvain, spectral, ...) do not, and a
    streaming run over one of them simply runs cold every event.
    """
    import inspect

    try:
        signature = inspect.signature(detector.detect)
    except (TypeError, ValueError):  # pragma: no cover - C callables
        return False
    return "initial_partition" in signature.parameters


def _detect_one(
    graph: Any,
    spec: RunSpec,
    index: int,
    engine_pool: EnginePool | None = None,
    initial_partition: Any = None,
) -> "RunArtifact":
    total = Stopwatch().start()
    build = Stopwatch().start()
    detector = build_detector(spec)
    if engine_pool is not None:
        attach_engine_pool(detector, engine_pool)
    build.stop()
    if spec.n_communities is None:
        raise SpecError(
            "spec.n_communities is required for detection runs"
        )
    run = Stopwatch().start()
    if initial_partition is not None and _supports_warm_start(detector):
        result = detector.detect(
            graph,
            n_communities=spec.n_communities,
            initial_partition=initial_partition,
        )
    else:
        result = detector.detect(graph, n_communities=spec.n_communities)
    run.stop()
    total.stop()
    return RunArtifact(
        spec=spec,
        result=result,
        timings={
            "build": build.elapsed,
            "run": run.elapsed,
            "total": total.elapsed,
        },
        seed=spec.seed,
        index=index,
    )


def _solve_one(
    model: Any,
    spec: RunSpec,
    index: int,
    engine_pool: EnginePool | None = None,
) -> "RunArtifact":
    if spec.solver is None:
        raise SpecError("spec.solver is required for solve runs")
    total = Stopwatch().start()
    build = Stopwatch().start()
    solver = build_solver(spec.solver, spec.solver_config, seed=spec.seed)
    if engine_pool is not None:
        attach_engine_pool(solver, engine_pool)
    build.stop()
    run = Stopwatch().start()
    result = solver.solve(model)
    run.stop()
    total.stop()
    return RunArtifact(
        spec=spec,
        result=result,
        timings={
            "build": build.elapsed,
            "run": run.elapsed,
            "total": total.elapsed,
        },
        seed=spec.seed,
        index=index,
    )


# ----------------------------------------------------------------------
# Process-pool worker plumbing (the wire format of executor="process")
# ----------------------------------------------------------------------
def _encode_input(item: Any) -> tuple[str, Any]:
    """Lower one batch input to its ``(tag, payload)`` wire form.

    Graphs ship as :meth:`repro.graphs.Graph.to_arrays` tuples and QUBO
    models as :meth:`to_arrays` bundles — plain numpy buffers, never
    pickled object graphs, so the per-task handoff cost is the raw
    array bytes.  Anything else (e.g. a custom :class:`BaseQubo`
    subclass without ``to_arrays``) falls back to ordinary pickling.
    """
    from repro.graphs.graph import Graph

    if isinstance(item, Graph):
        return ("graph", item.to_arrays())
    to_arrays = getattr(item, "to_arrays", None)
    if callable(to_arrays):
        return ("qubo", to_arrays())
    return ("object", item)


def _decode_input(
    tag: str,
    payload: Any,
    reader: "ShmChunkReader | None" = None,
) -> Any:
    """Worker-side inverse of :func:`_encode_input` (bit-exact).

    ``shm`` descriptors are first resolved through ``reader`` into the
    underlying ``(tag, payload)`` pair as read-only segment views.
    Array payloads are trusted as canonical — they are :meth:`to_arrays`
    output on both wires — so graph reconstruction adopts them without
    a canonicalisation pass (a stable no-op on canonical arrays,
    skipped here so shared-memory views stay zero-copy).
    """
    if tag == "shm":
        from repro.api.shm import ShmWireError

        if reader is None:
            raise ShmWireError(
                "shm wire descriptor outside a chunk reader context"
            )
        tag, payload = reader.decode(payload)
    if tag == "graph":
        from repro.graphs.graph import Graph

        return Graph.from_arrays(*payload, canonical=True)
    if tag == "qubo":
        from repro.qubo import model_from_arrays

        return model_from_arrays(payload)
    return payload


def _worker_initializer(
    pooling: bool, max_idle_engines: int, max_idle_total: int
) -> None:
    """Process-pool initializer: build this worker's engine pool once.

    Runs in each worker process before it takes its first task; every
    chunk the worker executes afterwards leases engines from the same
    process-local pool (:func:`repro.qhd.pool.process_pool`), so
    same-shape runs amortise engine setup within the worker exactly as
    thread-mode runs do through the session pool.
    """
    from repro.qhd import pool as qhd_pool

    qhd_pool.init_process_pool(
        max_idle_per_key=max_idle_engines,
        max_idle_total=max_idle_total,
        enabled=pooling,
    )


def _run_chunk(
    kind: str,
    spec_payload: dict[str, Any] | list[dict[str, Any]],
    chunk: list[tuple[int, tuple[str, Any]]],
) -> tuple[list[tuple[int, "RunArtifact"]], dict[str, float] | None]:
    """Process-pool task: run one chunk of encoded inputs sequentially.

    ``chunk`` is a list of ``(index, (tag, payload))`` pairs carrying
    each input's position in the original batch, so the parent can
    reassemble results in order regardless of which worker ran which
    chunk.  ``spec_payload`` is either one spec dict shared by every
    entry or a list of spec dicts aligned with the chunk (per-item
    specs).  Shared-memory payloads are resolved through one
    :class:`repro.api.shm.ShmChunkReader` whose attachments are closed
    when the chunk exits — success or not.  Returns the indexed
    artifacts plus the worker pool's counter delta for this chunk
    (merged into the parent session's pool counters), or ``None`` when
    pooling is disabled.
    """
    from repro.api.shm import ShmChunkReader
    from repro.qhd import pool as qhd_pool

    pool = qhd_pool.process_pool()
    if isinstance(spec_payload, list):
        specs = [RunSpec.from_dict(entry) for entry in spec_payload]
    else:
        shared = RunSpec.from_dict(spec_payload)
        specs = [shared] * len(chunk)
    run_one = _detect_one if kind == "detect" else _solve_one
    before = pool.counter_snapshot() if pool is not None else None
    results = []
    with ShmChunkReader() as reader:
        for (index, (tag, payload)), spec in zip(chunk, specs):
            item = _decode_input(tag, payload, reader=reader)
            results.append(
                (index, run_one(item, spec, index, engine_pool=pool))
            )
            # Drop the reconstructed input before the reader closes so
            # segment views don't pin the mapping past the chunk.
            del item
    delta = (
        EnginePool.counter_delta(before, pool.counter_snapshot())
        if pool is not None
        else None
    )
    return results, delta


def _session() -> Session:
    """The process-wide default :class:`repro.api.Session`.

    Imported lazily to break the import cycle: ``repro.api.session``
    imports this module at top level for the per-run execution core,
    so the runner must reach back for the session at call time.
    """
    from repro.api.session import default_session

    return default_session()


def detect(graph: Any, spec: RunSpec | dict[str, Any] | str) -> Any:
    """Run one detection spec on ``graph`` and return a RunArtifact.

    Runs through the process-wide :func:`repro.api.default_session`, so
    repeated calls reuse pooled evolution engines; results are
    bit-identical to a fresh, unpooled run.

    Examples
    --------
    >>> from repro.graphs import ring_of_cliques
    >>> graph, _ = ring_of_cliques(3, 5)
    >>> artifact = detect(graph, {
    ...     "solver": "greedy",
    ...     "n_communities": 3,
    ...     "seed": 0,
    ... })
    >>> artifact.result.n_communities
    3
    """
    return _session().detect(graph, spec)


def detect_batch(
    graphs: Sequence[Any],
    spec: RunSpec | dict[str, Any] | str,
    max_workers: int | None = None,
) -> list[Any]:
    """Run one detection spec over many graphs, optionally in parallel.

    Parameters
    ----------
    graphs:
        Input graphs; results preserve this order.
    spec:
        The shared run spec.  Every graph gets its own freshly built,
        identically-seeded detector, so results match single
        :func:`detect` calls regardless of ``max_workers``.
    max_workers:
        Concurrent runs; ``None`` uses the default session's width
        (``min(8, cpu_count)``) and ``1`` runs inline.

    Notes
    -----
    Delegates to :meth:`repro.api.Session.detect_batch` on the
    process-wide default session: worker threads persist across calls
    and same-shape QHD runs lease pooled evolution engines instead of
    rebuilding phase tables and buffers per graph.

    Examples
    --------
    >>> from repro.graphs import ring_of_cliques
    >>> graphs = [ring_of_cliques(3, 5)[0] for _ in range(3)]
    >>> artifacts = detect_batch(graphs, {
    ...     "solver": "greedy",
    ...     "n_communities": 3,
    ...     "seed": 0,
    ... }, max_workers=2)
    >>> [a.index for a in artifacts]
    [0, 1, 2]
    >>> len({a.result.n_communities for a in artifacts})
    1
    """
    return _session().detect_batch(graphs, spec, max_workers=max_workers)


def solve(model: Any, spec: RunSpec | dict[str, Any] | str) -> Any:
    """Run one QUBO solve spec on ``model`` and return a RunArtifact.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.qubo import QuboModel
    >>> model = QuboModel(np.array([[0.0, 2.0], [0.0, 0.0]]), [-1.0, -1.0])
    >>> artifact = solve(model, {"solver": "greedy", "seed": 0})
    >>> artifact.result.energy
    -1.0
    """
    return _session().solve(model, spec)


def solve_batch(
    models: Sequence[Any],
    spec: RunSpec | dict[str, Any] | str,
    max_workers: int | None = None,
) -> list[Any]:
    """Run one solve spec over many QUBO models, optionally in parallel.

    The solve-side counterpart of :func:`detect_batch`: every model
    gets its own freshly built, identically-seeded solver, so the batch
    reproduces the corresponding sequence of single :func:`solve` calls
    for any ``max_workers``.  Runs through the default session's
    persistent thread pool and engine pool.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.qubo import QuboModel
    >>> models = [
    ...     QuboModel(np.array([[0.0, 2.0], [0.0, 0.0]]), [-1.0, -1.0])
    ...     for _ in range(3)
    ... ]
    >>> artifacts = solve_batch(
    ...     models, {"solver": "greedy", "seed": 0}, max_workers=2)
    >>> [a.result.energy for a in artifacts]
    [-1.0, -1.0, -1.0]
    """
    return _session().solve_batch(models, spec, max_workers=max_workers)
