"""Spec execution: build components from the registries and run them.

This module implements the verbs of the ``repro.api`` facade:

* :func:`build_solver` / :func:`build_detector` — registry-backed
  construction with uniform ``seed`` / ``time_limit`` threading,
* :func:`detect` / :func:`solve` — execute one :class:`RunSpec` on one
  graph / QUBO model and return a :class:`RunArtifact`,
* :func:`detect_batch` — fan one spec out over many graphs with a
  thread pool, preserving input order and per-graph determinism (each
  graph gets a freshly built, identically-seeded pipeline, so a batch
  run reproduces the corresponding sequence of single runs exactly).
"""

from __future__ import annotations

import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Sequence

from repro.api.registry import DETECTORS, SOLVERS, Registry
from repro.api.spec import RunArtifact, RunSpec, SpecError
from repro.utils.timer import Stopwatch


def _spec_of(spec: RunSpec | dict[str, Any] | str) -> RunSpec:
    """Accept a RunSpec, a spec dict, or JSON text interchangeably."""
    if isinstance(spec, RunSpec):
        return spec
    if isinstance(spec, dict):
        return RunSpec.from_dict(spec)
    if isinstance(spec, str):
        return RunSpec.from_json(spec)
    raise SpecError(
        f"spec must be a RunSpec, dict or JSON string, "
        f"got {type(spec).__name__}"
    )


def _build(registry: Registry, name: str, config: dict[str, Any], **overrides):
    """Create ``name`` from ``registry``, applying supported overrides.

    Overrides (``seed``, ``time_limit``, ...) are threaded into the
    config only when the target class accepts the key and the config
    does not already pin it; unsupported non-``None`` overrides trigger
    a warning instead of being silently dropped — the uniform behaviour
    the old per-call-site solver tables lacked.
    """
    cls = registry.get(name)
    fields = set(cls.config_fields())
    config = dict(config)
    for key, value in overrides.items():
        if value is None or key in config:
            continue
        if key in fields:
            config[key] = value
        else:
            warnings.warn(
                f"{registry.kind} {name!r} does not accept "
                f"{key!r}={value!r}; ignoring it",
                RuntimeWarning,
                stacklevel=3,
            )
    return cls.from_config(config)


def build_solver(
    name: str,
    config: dict[str, Any] | None = None,
    *,
    seed: int | None = None,
    time_limit: float | None = None,
    **extra: Any,
) -> Any:
    """Instantiate a registered solver with uniform knob threading.

    Examples
    --------
    >>> solver = build_solver("simulated-annealing", seed=0, time_limit=5.0)
    >>> solver.time_limit
    5.0
    """
    merged = {**(config or {}), **extra}
    return _build(SOLVERS, name, merged, seed=seed, time_limit=time_limit)


def build_detector(
    spec: RunSpec | dict[str, Any] | str,
) -> Any:
    """Instantiate the detector pipeline described by ``spec``.

    The spec's ``solver``/``solver_config`` become the detector's
    ``solver`` entry (unless ``detector_config`` already pins one), and
    the spec ``seed`` is threaded into both configs wherever accepted.

    Examples
    --------
    >>> detector = build_detector({
    ...     "detector": "qhd",
    ...     "solver": "greedy",
    ...     "seed": 3,
    ... })
    >>> detector.solver.name
    'greedy'
    """
    spec = _spec_of(spec)
    config = dict(spec.detector_config)
    seed = spec.seed
    if spec.solver is not None and "solver" not in config:
        solver_config = dict(spec.solver_config)
        if (
            seed is not None
            and "seed" not in solver_config
            and "seed" in SOLVERS.get(spec.solver).config_fields()
        ):
            solver_config["seed"] = seed
            # The seed was honoured by the solver; if the detector has
            # no seed knob of its own, don't warn that it was ignored.
            if "seed" not in DETECTORS.get(spec.detector).config_fields():
                seed = None
        config["solver"] = {"name": spec.solver, "config": solver_config}
    return _build(DETECTORS, spec.detector, config, seed=seed)


def _detect_one(graph: Any, spec: RunSpec, index: int) -> "RunArtifact":
    total = Stopwatch().start()
    build = Stopwatch().start()
    detector = build_detector(spec)
    build.stop()
    if spec.n_communities is None:
        raise SpecError(
            "spec.n_communities is required for detection runs"
        )
    run = Stopwatch().start()
    result = detector.detect(graph, n_communities=spec.n_communities)
    run.stop()
    total.stop()
    return RunArtifact(
        spec=spec,
        result=result,
        timings={
            "build": build.elapsed,
            "run": run.elapsed,
            "total": total.elapsed,
        },
        seed=spec.seed,
        index=index,
    )


def detect(graph: Any, spec: RunSpec | dict[str, Any] | str) -> Any:
    """Run one detection spec on ``graph`` and return a RunArtifact.

    Examples
    --------
    >>> from repro.graphs import ring_of_cliques
    >>> graph, _ = ring_of_cliques(3, 5)
    >>> artifact = detect(graph, {
    ...     "solver": "greedy",
    ...     "n_communities": 3,
    ...     "seed": 0,
    ... })
    >>> artifact.result.n_communities
    3
    """
    return _detect_one(graph, _spec_of(spec), index=0)


def detect_batch(
    graphs: Sequence[Any],
    spec: RunSpec | dict[str, Any] | str,
    max_workers: int | None = None,
) -> list[Any]:
    """Run one detection spec over many graphs, optionally in parallel.

    Parameters
    ----------
    graphs:
        Input graphs; results preserve this order.
    spec:
        The shared run spec.  Every graph gets its own freshly built,
        identically-seeded detector, so results match single
        :func:`detect` calls regardless of ``max_workers``.
    max_workers:
        Thread-pool width; ``None`` sizes the pool to the batch (capped
        at 8) and ``1`` runs inline without a pool.

    Examples
    --------
    >>> from repro.graphs import ring_of_cliques
    >>> graphs = [ring_of_cliques(3, 5)[0] for _ in range(3)]
    >>> artifacts = detect_batch(graphs, {
    ...     "solver": "greedy",
    ...     "n_communities": 3,
    ...     "seed": 0,
    ... }, max_workers=2)
    >>> [a.index for a in artifacts]
    [0, 1, 2]
    >>> len({a.result.n_communities for a in artifacts})
    1
    """
    spec = _spec_of(spec)
    graphs = list(graphs)
    if max_workers is None:
        max_workers = min(8, max(1, len(graphs)))
    if max_workers <= 1 or len(graphs) <= 1:
        return [
            _detect_one(graph, spec, index) for index, graph in enumerate(graphs)
        ]
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        futures = [
            pool.submit(_detect_one, graph, spec, index)
            for index, graph in enumerate(graphs)
        ]
        return [future.result() for future in futures]


def solve(model: Any, spec: RunSpec | dict[str, Any] | str) -> Any:
    """Run one QUBO solve spec on ``model`` and return a RunArtifact.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.qubo import QuboModel
    >>> model = QuboModel(np.array([[0.0, 2.0], [0.0, 0.0]]), [-1.0, -1.0])
    >>> artifact = solve(model, {"solver": "greedy", "seed": 0})
    >>> artifact.result.energy
    -1.0
    """
    spec = _spec_of(spec)
    if spec.solver is None:
        raise SpecError("spec.solver is required for solve runs")
    total = Stopwatch().start()
    build = Stopwatch().start()
    solver = build_solver(spec.solver, spec.solver_config, seed=spec.seed)
    build.stop()
    run = Stopwatch().start()
    result = solver.solve(model)
    run.stop()
    total.stop()
    return RunArtifact(
        spec=spec,
        result=result,
        timings={
            "build": build.elapsed,
            "run": run.elapsed,
            "total": total.elapsed,
        },
        seed=spec.seed,
        index=0,
    )
