"""Awaitable session verbs for :mod:`asyncio` applications.

:class:`AsyncSession` is the asyncio face of
:class:`repro.api.Session`: every verb returns a coroutine whose
result is the same :class:`repro.api.RunArtifact` the synchronous verb
would return, bit-identical for seeded specs.  No event-loop work
happens in the library — runs are submitted to the underlying
session's executors through :meth:`Session.submit` (single runs) or
its dispatch pool (batch fan-outs) and the resulting
:class:`concurrent.futures.Future` objects are bridged with
:func:`asyncio.wrap_future`, so awaiting a run never blocks the loop.

Concurrency is bounded by the wrapped session: at most
``session.max_workers`` submitted runs execute at once (the rest
queue on the dispatch pool), and on the process backend each run is
forwarded to the persistent process pool as a single-item chunk over
the array wire — ``await`` scales with cores, not with one GIL.

Examples
--------
>>> import asyncio
>>> import repro.api as api
>>> from repro.graphs import ring_of_cliques
>>> async def main():
...     graph, _ = ring_of_cliques(3, 5)
...     spec = {"solver": "greedy", "n_communities": 3, "seed": 0}
...     async with api.AsyncSession() as session:
...         one = await session.detect(graph, spec)
...         many = await session.detect_batch([graph] * 2, spec)
...     return one.result.n_communities, len(many)
>>> asyncio.run(main())
(3, 2)
"""

from __future__ import annotations

import asyncio
from types import TracebackType
from typing import Any, Sequence

from repro.api.session import Session
from repro.api.spec import RunArtifact


class AsyncSession:
    """Awaitable verbs over a (possibly shared) :class:`Session`.

    Parameters
    ----------
    session:
        An existing session to wrap — the caller keeps ownership and
        must close it.  ``None`` (default) builds a private
        ``Session(**kwargs)`` that :meth:`aclose` (or the async
        context manager) closes.
    **kwargs:
        Constructor arguments for the private session when
        ``session`` is ``None`` (``max_workers``, ``executor``,
        ``wire``, ...).

    Examples
    --------
    >>> import asyncio
    >>> import repro.api as api
    >>> import numpy as np
    >>> from repro.qubo import QuboModel
    >>> async def main():
    ...     model = QuboModel(np.zeros((2, 2)), [-1.0, 1.0])
    ...     async with api.AsyncSession() as session:
    ...         artifact = await session.solve(
    ...             model, {"solver": "greedy", "seed": 0})
    ...     return artifact.result.energy
    >>> asyncio.run(main())
    -1.0
    """

    def __init__(self, session: Session | None = None, **kwargs: Any) -> None:
        self._session = Session(**kwargs) if session is None else session
        self._owned = session is None

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def session(self) -> Session:
        """The wrapped synchronous session."""
        return self._session

    @property
    def closed(self) -> bool:
        """Whether the wrapped session is closed."""
        return self._session.closed

    def stats(self) -> dict[str, Any]:
        """The wrapped session's :meth:`Session.stats` (non-blocking)."""
        return self._session.stats()

    async def aclose(self) -> None:
        """Close the wrapped session iff this wrapper built it.

        ``Session.close`` joins executors, so it runs on a worker
        thread (never on the event loop).  Wrapping an externally
        owned session makes this a no-op — the owner closes it.
        """
        if self._owned and not self._session.closed:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self._session.close)

    async def __aenter__(self) -> "AsyncSession":
        return self

    async def __aexit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        await self.aclose()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        owner = "owned" if self._owned else "shared"
        return f"AsyncSession({self._session!r}, {owner})"

    # ------------------------------------------------------------------
    # Awaitable verbs
    # ------------------------------------------------------------------
    async def detect(self, graph: Any, spec: Any) -> RunArtifact:
        """``await`` one detection run (see :meth:`Session.detect`)."""
        return await asyncio.wrap_future(
            self._session.submit(graph, spec, kind="detect")
        )

    async def solve(self, model: Any, spec: Any) -> RunArtifact:
        """``await`` one solve run (see :meth:`Session.solve`)."""
        return await asyncio.wrap_future(
            self._session.submit(model, spec, kind="solve")
        )

    async def submit(
        self, item: Any, spec: Any, kind: str | None = None
    ) -> RunArtifact:
        """``await`` one run with :meth:`Session.submit` kind inference."""
        return await asyncio.wrap_future(
            self._session.submit(item, spec, kind=kind)
        )

    async def detect_batch(
        self,
        graphs: Sequence[Any],
        spec: Any,
        max_workers: int | None = None,
    ) -> list[RunArtifact]:
        """``await`` a whole detection batch, order-preserving.

        The blocking :meth:`Session.detect_batch` runs on the
        session's dispatch pool (so the loop stays free) and fans out
        over the session's thread/process batch executor as usual —
        chunking, wire mode and the batch ≡ singles bit-exactness
        contract are all unchanged.
        """
        return await asyncio.wrap_future(
            self._session._dispatch(
                self._session.detect_batch, graphs, spec, max_workers
            )
        )

    async def solve_batch(
        self,
        models: Sequence[Any],
        spec: Any,
        max_workers: int | None = None,
    ) -> list[RunArtifact]:
        """``await`` a whole solve batch (see :meth:`detect_batch`)."""
        return await asyncio.wrap_future(
            self._session._dispatch(
                self._session.solve_batch, models, spec, max_workers
            )
        )
